//! Exhaustive ECC roundtrip coverage.
//!
//! * Hamming(7, 4): every dataword × every single-bit error position.
//! * Hamming(71, 64) (`with_data_bits(64)` — the single-error-correcting
//!   inner code of the standard (72, 64) SECDED used on 64-bit words; the
//!   72nd bit only adds double-error *detection*): every error position over
//!   deterministic random datawords.
//! * BCH(15, 7, 2) and BCH(31, 21, 2): every one- and two-error pattern.

use nvpim_ecc::bch::BchCode;
use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::{DecodeOutcome, HammingCode};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_data(k: usize, rng: &mut ChaCha8Rng) -> BitVec {
    (0..k).map(|_| rng.gen_bool(0.5)).collect()
}

#[test]
fn hamming_7_4_corrects_every_single_bit_error_exhaustively() {
    let code = HammingCode::new_standard(3);
    assert_eq!((code.n(), code.k()), (7, 4));
    for word in 0..16u32 {
        let data: BitVec = (0..4).map(|i| (word >> i) & 1 == 1).collect();
        let clean = code.encode(&data);

        // Clean codewords decode untouched.
        let mut codeword = clean.clone();
        assert_eq!(code.decode(&mut codeword), DecodeOutcome::Clean);
        assert_eq!(code.extract_data(&codeword), data);

        // Every single-bit corruption is corrected back to the data.
        for pos in 0..code.n() {
            let mut corrupted = clean.clone();
            corrupted.flip(pos);
            let outcome = code.decode(&mut corrupted);
            assert_eq!(
                outcome,
                DecodeOutcome::Corrected { position: pos },
                "word {word:#06b}, error at {pos}"
            );
            assert_eq!(corrupted, clean, "word {word:#06b}, error at {pos}");
            assert_eq!(code.extract_data(&corrupted), data);
        }
    }
}

#[test]
fn hamming_72_64_inner_code_corrects_every_position() {
    let code = HammingCode::with_data_bits(64).unwrap();
    assert_eq!(code.k(), 64);
    assert_eq!(code.parity_bits(), 7);
    assert_eq!(code.n(), 71);
    let mut rng = ChaCha8Rng::seed_from_u64(64);
    for trial in 0..20 {
        let data = random_data(64, &mut rng);
        let clean = code.encode(&data);
        for pos in 0..code.n() {
            let mut corrupted = clean.clone();
            corrupted.flip(pos);
            let outcome = code.decode(&mut corrupted);
            assert_eq!(
                outcome,
                DecodeOutcome::Corrected { position: pos },
                "trial {trial}, error at {pos}"
            );
            assert_eq!(corrupted, clean);
            assert_eq!(code.extract_data(&corrupted), data);
        }
    }
}

#[test]
fn hamming_double_errors_are_never_silently_accepted() {
    // Hamming distance 3: two errors decode to *some* single-error
    // correction (possibly wrong data), but never to `Clean` — the checker
    // always notices something happened.
    let code = HammingCode::new_standard(3);
    for word in 0..16u32 {
        let data: BitVec = (0..4).map(|i| (word >> i) & 1 == 1).collect();
        let clean = code.encode(&data);
        for p1 in 0..code.n() {
            for p2 in (p1 + 1)..code.n() {
                let mut corrupted = clean.clone();
                corrupted.flip(p1);
                corrupted.flip(p2);
                let outcome = code.decode(&mut corrupted);
                assert_ne!(
                    outcome,
                    DecodeOutcome::Clean,
                    "word {word:#06b}, errors at {p1},{p2}"
                );
            }
        }
    }
}

fn exhaustive_bch_roundtrip(m: usize, t: usize) {
    let code = BchCode::new(m, t).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64((m * 100 + t) as u64);
    let data = random_data(code.k(), &mut rng);
    let clean = code.encode(&data);
    assert_eq!(code.extract_data(&clean), data);

    // All single-error patterns.
    for p in 0..code.n() {
        let mut corrupted = clean.clone();
        corrupted.flip(p);
        let fixed = code
            .decode(&mut corrupted)
            .unwrap_or_else(|e| panic!("BCH({m},{t}): 1 error at {p}: {e:?}"));
        assert_eq!(fixed, 1, "error at {p}");
        assert_eq!(corrupted, clean, "error at {p}");
    }

    // All double-error patterns.
    for p1 in 0..code.n() {
        for p2 in (p1 + 1)..code.n() {
            let mut corrupted = clean.clone();
            corrupted.flip(p1);
            corrupted.flip(p2);
            let fixed = code
                .decode(&mut corrupted)
                .unwrap_or_else(|e| panic!("BCH({m},{t}): errors at {p1},{p2}: {e:?}"));
            assert_eq!(fixed, 2, "errors at {p1},{p2}");
            assert_eq!(corrupted, clean, "errors at {p1},{p2}");
        }
    }
}

#[test]
fn bch_15_corrects_all_one_and_two_error_patterns() {
    exhaustive_bch_roundtrip(4, 2); // BCH(15, 7, 2): 15 + 105 patterns
}

#[test]
fn bch_31_corrects_all_one_and_two_error_patterns() {
    exhaustive_bch_roundtrip(5, 2); // BCH(31, 21, 2): 31 + 465 patterns
}
