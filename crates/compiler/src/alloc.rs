//! Greedy scratch-space allocator with area reclaims (§V: "manages scratch
//! space using a greedy memory allocator, which reclaims cells (whose data is
//! no longer needed) whenever the array runs out of available scratch
//! space").
//!
//! Cells are handed out greedily in column order. Freed cells are *not*
//! immediately reusable: they accumulate in a dead list and only become
//! available again through a **reclaim event**, which models the bulk
//! re-initialization (preset) of the recycled cells that the paper charges
//! to the protected designs' time and energy budget. The number of reclaim
//! events is exactly the quantity reported in Table IV.

use serde::{Deserialize, Serialize};

/// A reclaim event: the allocator ran out of fresh cells and recycled the
/// dead ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimEvent {
    /// Index of the gate (in schedule order) whose allocation triggered the
    /// reclaim.
    pub at_gate: usize,
    /// Number of cells recycled by this event.
    pub cells_freed: usize,
}

/// Greedy cell allocator for one row's scratch region.
#[derive(Debug, Clone)]
pub struct ScratchAllocator {
    /// Columns available, in allocation order.
    columns: Vec<usize>,
    /// Next never-used column index into `columns`.
    next_fresh: usize,
    /// Cells released by the program but not yet reclaimed.
    dead: Vec<usize>,
    /// Cells made available again by reclaim events.
    recycled: Vec<usize>,
    /// Number of cells currently holding live values.
    live: usize,
    reclaims: Vec<ReclaimEvent>,
}

impl ScratchAllocator {
    /// Creates an allocator over the given scratch columns.
    pub fn new(columns: Vec<usize>) -> Self {
        Self {
            columns,
            next_fresh: 0,
            dead: Vec::new(),
            recycled: Vec::new(),
            live: 0,
            reclaims: Vec::new(),
        }
    }

    /// Creates an allocator over a contiguous column range.
    pub fn over_range(range: std::ops::Range<usize>) -> Self {
        Self::new(range.collect())
    }

    /// Total capacity in cells.
    pub fn capacity(&self) -> usize {
        self.columns.len()
    }

    /// Cells currently holding live values.
    pub fn live_cells(&self) -> usize {
        self.live
    }

    /// Cells that are dead but not yet reclaimed.
    pub fn dead_cells(&self) -> usize {
        self.dead.len()
    }

    /// Reclaim events so far.
    pub fn reclaims(&self) -> &[ReclaimEvent] {
        &self.reclaims
    }

    /// Number of reclaim events so far (the Table IV metric).
    pub fn reclaim_count(&self) -> usize {
        self.reclaims.len()
    }

    /// Allocates one cell for the gate at `gate_index`, triggering a reclaim
    /// if no fresh or recycled cell is available. Returns `None` only when
    /// even a reclaim cannot free a cell (every cell is live).
    pub fn allocate(&mut self, gate_index: usize) -> Option<usize> {
        if let Some(col) = self.take_available() {
            self.live += 1;
            return Some(col);
        }
        // Out of space: perform an area reclaim of all dead cells.
        if self.dead.is_empty() {
            return None;
        }
        let freed = self.dead.len();
        self.recycled.append(&mut self.dead);
        self.reclaims.push(ReclaimEvent {
            at_gate: gate_index,
            cells_freed: freed,
        });
        let col = self
            .take_available()
            .expect("reclaim freed at least one cell");
        self.live += 1;
        Some(col)
    }

    fn take_available(&mut self) -> Option<usize> {
        if self.next_fresh < self.columns.len() {
            let col = self.columns[self.next_fresh];
            self.next_fresh += 1;
            Some(col)
        } else {
            self.recycled.pop()
        }
    }

    /// Releases a cell whose value is no longer needed. The cell becomes
    /// reusable only after the next reclaim event.
    pub fn release(&mut self, column: usize) {
        debug_assert!(self.live > 0, "release without a live allocation");
        self.live = self.live.saturating_sub(1);
        self.dead.push(column);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_fresh_cells_first() {
        let mut a = ScratchAllocator::over_range(10..14);
        assert_eq!(a.capacity(), 4);
        let cols: Vec<usize> = (0..4).map(|i| a.allocate(i).unwrap()).collect();
        assert_eq!(cols, vec![10, 11, 12, 13]);
        assert_eq!(a.live_cells(), 4);
        assert_eq!(a.reclaim_count(), 0);
    }

    #[test]
    fn exhaustion_with_no_dead_cells_fails() {
        let mut a = ScratchAllocator::over_range(0..2);
        a.allocate(0).unwrap();
        a.allocate(1).unwrap();
        assert_eq!(a.allocate(2), None);
    }

    #[test]
    fn dead_cells_require_a_reclaim_to_be_reused() {
        let mut a = ScratchAllocator::over_range(0..2);
        let c0 = a.allocate(0).unwrap();
        a.allocate(1).unwrap();
        a.release(c0);
        assert_eq!(a.dead_cells(), 1);
        // Allocation succeeds but must go through a reclaim event.
        let c2 = a.allocate(2).unwrap();
        assert_eq!(c2, c0);
        assert_eq!(a.reclaim_count(), 1);
        assert_eq!(
            a.reclaims()[0],
            ReclaimEvent {
                at_gate: 2,
                cells_freed: 1
            }
        );
    }

    #[test]
    fn reclaim_count_scales_with_pressure() {
        // A program that keeps only 2 values live but produces many: fewer
        // capacity -> more reclaims.
        let simulate = |capacity: usize| {
            let mut a = ScratchAllocator::over_range(0..capacity);
            let mut prev: Option<usize> = None;
            for i in 0..1000 {
                let col = a.allocate(i).expect("allocation must succeed");
                if let Some(p) = prev.take() {
                    a.release(p);
                }
                prev = Some(col);
            }
            a.reclaim_count()
        };
        let small = simulate(8);
        let large = simulate(64);
        assert!(
            small > large,
            "smaller scratch must reclaim more ({small} vs {large})"
        );
        assert!(small >= 1000 / 8 - 2);
    }

    #[test]
    fn reclaimed_cells_count_matches_dead_cells() {
        let mut a = ScratchAllocator::over_range(0..4);
        let cols: Vec<usize> = (0..4).map(|i| a.allocate(i).unwrap()).collect();
        for &c in &cols[..3] {
            a.release(c);
        }
        let _ = a.allocate(10).unwrap();
        assert_eq!(a.reclaims()[0].cells_freed, 3);
        assert_eq!(a.dead_cells(), 0);
        assert_eq!(a.live_cells(), 2);
    }
}
