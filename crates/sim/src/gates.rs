//! In-array Boolean gate semantics (§II-A, Table I and the Appendix).
//!
//! All targeted PiM technologies implement logic by presetting a designated
//! output cell and then applying a gate-specific bias voltage across a
//! resistive network formed by the input cells and the output cell. The
//! output switches only when the combined current crosses the device's
//! critical threshold, which realizes a thresholding function of the inputs:
//!
//! * `NOR` — output presets to 0 and switches to 1 only when **all** inputs
//!   are 0,
//! * `NOR22` / multi-output `NOR` — identical outputs produced in one step in
//!   distinct cells (used by ECiM for parity copies and by TRiM for
//!   redundant copies),
//! * `THR` — the 4-input thresholding gate of Table I: output presets to 0
//!   and switches to 1 when three or more inputs are 0,
//! * `XOR` — the derived 2-step sequence `NOR22` + `THR` (Table I).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a single in-array gate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// `n`-input NOR with `outputs` identical output cells (1, 2 or 3 in the
    /// paper; `NOR22` is `Nor { outputs: 2 }`).
    Nor {
        /// Number of identical output cells driven in one step.
        outputs: u8,
    },
    /// The 4-input thresholding gate: output switches to 1 when at least
    /// `threshold` inputs are 0 (the paper uses `threshold = 3`).
    Thr {
        /// Minimum number of zero-valued inputs required to switch the output.
        threshold: u8,
    },
    /// Copy of a single cell (implemented as two cascaded NOT/NOR1 steps in
    /// hardware but exposed as one logical operation with `steps() == 1` per
    /// Table I's `CP`).
    Copy,
    /// Single-input NOR (logical NOT).
    Not,
    /// Write of an immediate value into a cell (a preset used as data).
    Preset {
        /// The value written.
        value: bool,
    },
}

impl GateKind {
    /// Standard single-output 2-input NOR.
    pub const NOR2: GateKind = GateKind::Nor { outputs: 1 };
    /// Two-output 2-input NOR (`NOR22`).
    pub const NOR22: GateKind = GateKind::Nor { outputs: 2 };
    /// Three-output NOR used by TRiM's one-shot redundant computation.
    pub const NOR23: GateKind = GateKind::Nor { outputs: 3 };
    /// The paper's 4-input thresholding gate.
    pub const THR: GateKind = GateKind::Thr { threshold: 3 };

    /// Number of output cells this gate drives.
    pub fn output_count(&self) -> usize {
        match self {
            GateKind::Nor { outputs } => *outputs as usize,
            GateKind::Thr { .. } | GateKind::Copy | GateKind::Not | GateKind::Preset { .. } => 1,
        }
    }

    /// Evaluates the gate on `inputs`, returning the (shared) output value.
    ///
    /// # Panics
    ///
    /// Panics if a `Thr` gate receives fewer inputs than its threshold, or a
    /// `Copy`/`Not` gate does not receive exactly one input.
    pub fn evaluate(&self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Nor { .. } => !inputs.iter().any(|&b| b),
            GateKind::Thr { threshold } => {
                assert!(
                    inputs.len() >= *threshold as usize,
                    "THR gate needs at least {threshold} inputs"
                );
                let zeros = inputs.iter().filter(|&&b| !b).count();
                zeros >= *threshold as usize
            }
            GateKind::Copy => {
                assert_eq!(inputs.len(), 1, "copy takes exactly one input");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "not takes exactly one input");
                !inputs[0]
            }
            GateKind::Preset { value } => *value,
        }
    }

    /// Preset value of the output cell before the gate fires. Every
    /// thresholding gate in the targeted technologies presets to logic 0 and
    /// may switch to 1.
    pub fn preset_value(&self) -> bool {
        match self {
            GateKind::Preset { value } => *value,
            _ => false,
        }
    }

    /// Whether this is a multi-output gate (drives more than one cell).
    pub fn is_multi_output(&self) -> bool {
        self.output_count() > 1
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Nor { outputs: 1 } => write!(f, "NOR"),
            GateKind::Nor { outputs } => write!(f, "NOR2{outputs}"),
            GateKind::Thr { threshold } => write!(f, "THR{threshold}"),
            GateKind::Copy => write!(f, "CP"),
            GateKind::Not => write!(f, "NOT"),
            GateKind::Preset { value } => write!(f, "PRESET({})", u8::from(*value)),
        }
    }
}

/// Computes XOR of two bits exactly the way the PiM array does it: a 2-output
/// NOR (`s1 = s2 = NOR(a, b)`) followed by the 4-input THR gate
/// `THR(a, b, s1, s2)` (Table I, 2-step variant).
///
/// Returns `(s, out)` where `s` is the intermediate NOR output and `out` the
/// XOR result.
pub fn xor_two_step(a: bool, b: bool) -> (bool, bool) {
    let s = GateKind::NOR22.evaluate(&[a, b]);
    let out = GateKind::THR.evaluate(&[a, b, s, s]);
    (s, out)
}

/// Computes XOR with the 3-step sequence of Table I (`NOR`, `CP`, `THR`),
/// returning `(s1, s2, out)`.
pub fn xor_three_step(a: bool, b: bool) -> (bool, bool, bool) {
    let s1 = GateKind::NOR2.evaluate(&[a, b]);
    let s2 = GateKind::Copy.evaluate(&[s1]);
    let out = GateKind::THR.evaluate(&[a, b, s1, s2]);
    (s1, s2, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nor_truth_table() {
        assert!(GateKind::NOR2.evaluate(&[false, false]));
        assert!(!GateKind::NOR2.evaluate(&[false, true]));
        assert!(!GateKind::NOR2.evaluate(&[true, false]));
        assert!(!GateKind::NOR2.evaluate(&[true, true]));
    }

    #[test]
    fn multi_output_nor_same_value_more_outputs() {
        assert_eq!(GateKind::NOR22.output_count(), 2);
        assert_eq!(GateKind::NOR23.output_count(), 3);
        assert!(GateKind::NOR22.is_multi_output());
        assert!(!GateKind::NOR2.is_multi_output());
        assert_eq!(
            GateKind::NOR22.evaluate(&[false, false]),
            GateKind::NOR2.evaluate(&[false, false])
        );
    }

    #[test]
    fn thr_switches_at_three_zeros() {
        let thr = GateKind::THR;
        assert!(!thr.evaluate(&[true, true, false, false]));
        assert!(thr.evaluate(&[true, false, false, false]));
        assert!(thr.evaluate(&[false, false, false, false]));
        assert!(!thr.evaluate(&[true, true, true, false]));
    }

    #[test]
    #[should_panic(expected = "THR gate needs at least")]
    fn thr_with_too_few_inputs_panics() {
        GateKind::THR.evaluate(&[false, false]);
    }

    #[test]
    fn table1_three_step_xor() {
        // Reproduces Table I row by row.
        let expect = [
            ((false, false), (true, true, false)),
            ((false, true), (false, false, true)),
            ((true, false), (false, false, true)),
            ((true, true), (false, false, false)),
        ];
        for ((a, b), (s1, s2, out)) in expect {
            assert_eq!(xor_three_step(a, b), (s1, s2, out), "inputs ({a}, {b})");
        }
    }

    #[test]
    fn two_step_xor_equals_boolean_xor() {
        for a in [false, true] {
            for b in [false, true] {
                let (_, out) = xor_two_step(a, b);
                assert_eq!(out, a ^ b, "inputs ({a}, {b})");
            }
        }
    }

    #[test]
    fn copy_not_preset() {
        assert!(GateKind::Copy.evaluate(&[true]));
        assert!(!GateKind::Copy.evaluate(&[false]));
        assert!(GateKind::Not.evaluate(&[false]));
        assert!(!GateKind::Not.evaluate(&[true]));
        assert!(GateKind::Preset { value: true }.evaluate(&[]));
        assert!(GateKind::Preset { value: true }.preset_value());
        assert!(!GateKind::THR.preset_value());
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::NOR2.to_string(), "NOR");
        assert_eq!(GateKind::NOR22.to_string(), "NOR22");
        assert_eq!(GateKind::THR.to_string(), "THR3");
        assert_eq!(GateKind::Copy.to_string(), "CP");
    }
}
