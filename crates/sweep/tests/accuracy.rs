//! Accuracy-campaign contract tests: inference-accuracy campaigns must be
//! byte-reproducible (across backends, chunk sizes and repeated runs, with
//! stuck-at defect maps a pure function of the campaign seed), statistically
//! sane (top-1 fidelity exactly 1.0 at the fault-free point and
//! non-increasing in the fault rate on the low-rate grid), and must show the
//! paper's headline effect: an online detect-and-recompute scheme recovers
//! measurably more task accuracy than the unprotected baseline at the same
//! fault rate.
//!
//! `RAYON_NUM_THREADS` is process-global (see `determinism.rs`), so this
//! file varies parallelism through backends and chunk sizes only.

use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    prepare_campaign, run_campaign, run_campaign_with_backend, CampaignControl, CampaignKind,
    EstimatorMode, ProtectionConfig, ScheduleCache, SimBackend, SweepError, SweepPlan,
    SweepWorkload,
};
use nvpim_workloads::Benchmark;

fn accuracy_plan(rates: &[f64], stuck_at_rate: f64, seeds_per_point: u64) -> SweepPlan {
    SweepPlan {
        workloads: vec![SweepWorkload::Benchmark(Benchmark::Mnist {
            weight_bits: 1,
        })],
        technologies: vec![Technology::ReramCrossbar],
        protections: vec![
            ProtectionConfig::UNPROTECTED,
            ProtectionConfig::DETECT_RECOMPUTE,
        ],
        gate_error_rates: rates.to_vec(),
        seeds_per_point,
        campaign_seed: 0xACC0_CAFE,
        estimator: EstimatorMode::Exact,
        kind: CampaignKind::Accuracy,
        stuck_at_rate,
    }
}

/// Accuracy reports are a pure function of the plan: backend choice, chunk
/// size and repeated execution never change a byte. The report carries
/// `schema_version` 3 and an accuracy summary on every point.
#[test]
fn accuracy_reports_are_byte_identical_across_backends_chunks_and_runs() {
    let plan = accuracy_plan(&[0.0, 1e-3], 1e-4, 6);
    let baseline = run_campaign(&plan).unwrap();
    assert_eq!(baseline.schema_version, 3);
    for point in &baseline.points {
        let accuracy = point
            .accuracy
            .as_ref()
            .unwrap_or_else(|| panic!("{} carries no accuracy summary", point.protection));
        assert_eq!(accuracy.evaluated_trials, plan.seeds_per_point);
        assert!(point.estimator.is_none(), "exact mode carries no estimator");
    }

    let baseline_json = baseline.to_json();
    let again = run_campaign(&plan).unwrap().to_json();
    assert_eq!(baseline_json, again, "same plan twice → identical bytes");

    let scalar = run_campaign_with_backend(&plan, SimBackend::Scalar)
        .unwrap()
        .to_json();
    assert_eq!(baseline_json, scalar, "scalar backend must agree");

    for chunk in [1usize, 7] {
        let mut cache = ScheduleCache::new();
        let chunked = prepare_campaign(&plan, &mut cache)
            .unwrap()
            .run_chunked(chunk, |_| CampaignControl::Continue)
            .unwrap()
            .to_json();
        assert_eq!(baseline_json, chunked, "chunk size {chunk} must agree");
    }
}

/// Per-trial stuck-at defect maps derive from the campaign seed alone: the
/// same plan reproduces byte-identically, a reseeded plan lands different
/// defects, and the defects are real — at a zero transient rate they alone
/// corrupt inference (silently for the unprotected baseline, visibly for
/// the detecting scheme, whose transient fault log stays empty).
#[test]
fn stuck_at_defect_maps_derive_from_the_campaign_seed() {
    let plan = accuracy_plan(&[0.0], 0.02, 8);
    let report = run_campaign(&plan).unwrap();
    assert_eq!(
        report.to_json(),
        run_campaign(&plan).unwrap().to_json(),
        "defect maps must reproduce from the seed"
    );

    let mut reseeded = plan.clone();
    reseeded.campaign_seed ^= 0x5AD_DEFEC;
    assert_ne!(
        report.to_json(),
        run_campaign(&reseeded).unwrap().to_json(),
        "a different campaign seed must land different defects"
    );

    let unprotected = &report.points[0];
    let recompute = &report.points[1];
    assert!(unprotected.protection.starts_with("unprotected"));
    assert!(recompute.protection.starts_with("detect-recompute"));
    let base_acc = unprotected.accuracy.as_ref().unwrap().accuracy;
    let rec_acc = recompute.accuracy.as_ref().unwrap().accuracy;
    assert!(
        base_acc < 1.0,
        "2% stuck cells must corrupt unprotected inference (got {base_acc})"
    );
    // Stuck pins are permanent state, not injected transient faults — but
    // the parity checker still sees and flags the corrupted levels.
    assert_eq!(unprotected.faults_injected, 0);
    assert_eq!(recompute.faults_injected, 0);
    assert!(recompute.errors_detected > 0, "defects must be detected");
    assert!(
        rec_acc > base_acc,
        "recompute must recover accuracy from defects ({rec_acc} vs {base_acc})"
    );
}

/// On the low-rate smoke grid, top-1 fidelity is exactly 1.0 at the
/// fault-free point and monotonically non-increasing in the gate fault
/// rate — and DetectRecompute recovers measurably more accuracy than the
/// unprotected baseline at every faulty rate (the subsystem's headline
/// claim).
#[test]
fn accuracy_degrades_monotonically_and_recompute_recovers_it() {
    let rates = [0.0, 1e-4, 3e-4];
    let report = run_campaign(&accuracy_plan(&rates, 0.0, 16)).unwrap();
    assert_eq!(report.points.len(), 2 * rates.len());

    let series = |label: &str| -> Vec<f64> {
        report
            .points
            .iter()
            .filter(|p| p.protection.starts_with(label))
            .map(|p| {
                let a = p.accuracy.as_ref().unwrap();
                assert!(a.accuracy_ci_low <= a.accuracy && a.accuracy <= a.accuracy_ci_high);
                assert!((a.top1_delta - (a.accuracy - 1.0)).abs() < 1e-12);
                a.accuracy
            })
            .collect()
    };
    let unprotected = series("unprotected");
    let recompute = series("detect-recompute");

    // Fault-free fidelity is exactly 1.0 by construction: the clean PiM
    // path agrees with the software reference bit for bit.
    assert_eq!(unprotected[0], 1.0);
    assert_eq!(recompute[0], 1.0);
    for pair in unprotected.windows(2) {
        assert!(pair[1] <= pair[0], "unprotected: {unprotected:?}");
    }
    for pair in recompute.windows(2) {
        assert!(pair[1] <= pair[0], "recompute: {recompute:?}");
    }
    // Measurable recovery at both faulty rates, not a rounding artifact.
    for (i, _) in rates.iter().enumerate().skip(1) {
        assert!(
            recompute[i] >= unprotected[i] + 0.15,
            "rate {}: recompute {} vs unprotected {}",
            rates[i],
            recompute[i],
            unprotected[i]
        );
    }
}

/// Accuracy campaigns are validated up front: label-less workloads, the
/// stratified estimator and out-of-range defect densities are rejected
/// before any trial runs.
#[test]
fn accuracy_campaigns_reject_unlabelled_workloads_and_stratified_estimation() {
    let mut unlabelled = accuracy_plan(&[1e-3], 0.0, 2);
    unlabelled.workloads = vec![SweepWorkload::Mac {
        acc_bits: 8,
        mul_bits: 4,
    }];
    assert!(matches!(
        run_campaign(&unlabelled),
        Err(SweepError::UnsupportedCampaign(_))
    ));

    let mut stratified = accuracy_plan(&[1e-3], 0.0, 2);
    stratified.estimator = EstimatorMode::Stratified;
    assert!(matches!(
        run_campaign(&stratified),
        Err(SweepError::UnsupportedCampaign(_))
    ));

    let mut bad_density = accuracy_plan(&[1e-3], 0.0, 2);
    bad_density.stuck_at_rate = 1.5;
    assert!(matches!(
        run_campaign(&bad_density),
        Err(SweepError::InvalidErrorRate(_))
    ));
}
