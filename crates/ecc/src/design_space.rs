//! The SEP design space of Table II: asymptotic time, energy and Checker
//! metadata overheads of ECiM and TRiM as a function of the metadata-update
//! and error-check granularities, for protecting `N` PiM gate outputs.
//!
//! These are the *asymptotic* quantities the paper tabulates before the
//! detailed evaluation (which additionally accounts for area reclaims,
//! Checker communication and technology energies — see `nvpim-core`).

use serde::{Deserialize, Serialize};

/// Protection scheme family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Hamming-code based in-memory parity maintenance (the paper's ECiM).
    Ecim,
    /// Triple-modular-redundancy in memory (the paper's TRiM).
    Trim,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Ecim => write!(f, "ECiM"),
            Scheme::Trim => write!(f, "TRiM"),
        }
    }
}

/// Granularity at which metadata updates or error checks are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// After every Boolean gate operation.
    Gate,
    /// After all gates of a logic level (gates within a level are not
    /// data-dependent, so a single error cannot multiply inside a level).
    LogicLevel,
    /// Once after the whole circuit — cannot guarantee SEP.
    Circuit,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::Gate => write!(f, "gate"),
            Granularity::LogicLevel => write!(f, "logic level"),
            Granularity::Circuit => write!(f, "circuit"),
        }
    }
}

/// One row of Table II: a scheme evaluated at a particular pair of
/// granularities for protecting `n` gate outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Protection scheme.
    pub scheme: Scheme,
    /// Metadata update granularity.
    pub update: Granularity,
    /// Error check granularity.
    pub check: Granularity,
    /// Number of protected gate outputs.
    pub n: u64,
}

/// Asymptotic cost of a design point (Table II columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignCost {
    /// Whether single error protection is guaranteed.
    pub sep_guarantee: bool,
    /// Time overhead in units of unprotected gate operations.
    pub time: f64,
    /// Whether the time overhead can be fully masked by overlapping checks
    /// for one row with computation in other rows (§IV-F).
    pub time_maskable: bool,
    /// Energy overhead in units of unprotected gate operations.
    pub energy: f64,
    /// Metadata the Checker must receive per check, in bits (also a proxy for
    /// array↔Checker communication volume).
    pub checker_metadata_bits: f64,
    /// Notes reproducing the table's qualitative remarks.
    pub notes: String,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(scheme: Scheme, update: Granularity, check: Granularity, n: u64) -> Self {
        Self {
            scheme,
            update,
            check,
            n,
        }
    }

    /// Whether this combination of granularities can guarantee single error
    /// protection. Check granularity can never be finer than update
    /// granularity, and circuit-granularity checks let a single gate error
    /// propagate across logic levels (§IV-F).
    pub fn is_valid(&self) -> bool {
        self.check >= self.update
    }

    /// Evaluates the asymptotic costs of this design point (Table II).
    pub fn cost(&self) -> DesignCost {
        let n = self.n as f64;
        let log_n = if self.n <= 1 {
            1.0
        } else {
            (self.n as f64).log2()
        };
        let sep = self.is_valid() && self.check != Granularity::Circuit;
        match (self.scheme, self.update, self.check) {
            (Scheme::Trim, Granularity::Gate, Granularity::Gate) => DesignCost {
                sep_guarantee: sep,
                time: 3.0 * n,
                time_maskable: false,
                energy: 3.0 * n,
                checker_metadata_bits: 2.0 * n,
                notes: "classic TMR in time; per-gate checks are hard to overlap".into(),
            },
            (Scheme::Trim, Granularity::Gate, Granularity::LogicLevel) => DesignCost {
                sep_guarantee: sep,
                time: 3.0 * n,
                time_maskable: true,
                energy: 3.0 * n,
                checker_metadata_bits: 2.0 * n,
                notes: "3N time, but fully maskable by overlapping checks with other rows".into(),
            },
            (Scheme::Ecim, Granularity::Gate, Granularity::Gate) => {
                // Hamming(3,1) degenerates to TRiM at the same granularity.
                let mut c =
                    DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::Gate, self.n)
                        .cost();
                c.notes = "Hamming(3,1): reduces to TRiM at gate/gate granularity".into();
                c
            }
            (Scheme::Ecim, Granularity::Gate, Granularity::LogicLevel) => DesignCost {
                sep_guarantee: sep,
                time: n * (1.0 + log_n),
                time_maskable: true,
                energy: n * (1.0 + log_n),
                checker_metadata_bits: ecim_checker_metadata_bits(self.n),
                notes: "parity bits grow as log N; checks overlap with other rows".into(),
            },
            // Circuit-granularity checks or inconsistent granularities:
            // cannot guarantee SEP; costs follow the coarser of the two.
            _ => DesignCost {
                sep_guarantee: false,
                time: match self.scheme {
                    Scheme::Trim => 3.0 * n,
                    Scheme::Ecim => n * (1.0 + log_n),
                },
                time_maskable: self.check != Granularity::Gate,
                energy: match self.scheme {
                    Scheme::Trim => 3.0 * n,
                    Scheme::Ecim => n * (1.0 + log_n),
                },
                checker_metadata_bits: match self.scheme {
                    Scheme::Trim => 2.0 * n,
                    Scheme::Ecim => log_n,
                },
                notes: "cannot guarantee single error protection".into(),
            },
        }
    }
}

/// The Checker metadata for ECiM at logic-level checks: `N·log N` bits in
/// Table II's notation (N protected data bits, each contributing ~log N
/// parity-bit participation to what the Checker must receive per check).
pub fn ecim_checker_metadata_bits(n: u64) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    n as f64 * (n as f64).log2()
}

/// Generates the four highlighted rows of Table II for `n` protected outputs.
pub fn table2_rows(n: u64) -> Vec<(DesignPoint, DesignCost)> {
    let points = [
        DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::Gate, n),
        DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::LogicLevel, n),
        DesignPoint::new(Scheme::Ecim, Granularity::Gate, Granularity::Gate, n),
        DesignPoint::new(Scheme::Ecim, Granularity::Gate, Granularity::LogicLevel, n),
    ];
    points
        .into_iter()
        .map(|p| {
            let c = p.cost();
            (p, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_ordering() {
        assert!(Granularity::Gate < Granularity::LogicLevel);
        assert!(Granularity::LogicLevel < Granularity::Circuit);
    }

    #[test]
    fn circuit_checks_lose_sep() {
        let p = DesignPoint::new(Scheme::Ecim, Granularity::Gate, Granularity::Circuit, 1024);
        assert!(!p.cost().sep_guarantee);
        let p = DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::Circuit, 1024);
        assert!(!p.cost().sep_guarantee);
    }

    #[test]
    fn check_cannot_be_finer_than_update() {
        let p = DesignPoint::new(Scheme::Trim, Granularity::LogicLevel, Granularity::Gate, 64);
        assert!(!p.is_valid());
    }

    #[test]
    fn trim_costs_are_3n() {
        let n = 1000u64;
        let gate = DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::Gate, n).cost();
        assert_eq!(gate.time, 3000.0);
        assert_eq!(gate.energy, 3000.0);
        assert_eq!(gate.checker_metadata_bits, 2000.0);
        assert!(!gate.time_maskable);
        let level =
            DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::LogicLevel, n).cost();
        assert!(level.time_maskable);
        assert!(level.sep_guarantee);
    }

    #[test]
    fn ecim_gate_gate_reduces_to_trim() {
        let n = 256u64;
        let ecim = DesignPoint::new(Scheme::Ecim, Granularity::Gate, Granularity::Gate, n).cost();
        let trim = DesignPoint::new(Scheme::Trim, Granularity::Gate, Granularity::Gate, n).cost();
        assert_eq!(ecim.time, trim.time);
        assert_eq!(ecim.energy, trim.energy);
        assert_eq!(ecim.checker_metadata_bits, trim.checker_metadata_bits);
    }

    #[test]
    fn ecim_logic_level_scales_logarithmically() {
        let small =
            DesignPoint::new(Scheme::Ecim, Granularity::Gate, Granularity::LogicLevel, 16).cost();
        let large = DesignPoint::new(
            Scheme::Ecim,
            Granularity::Gate,
            Granularity::LogicLevel,
            1 << 20,
        )
        .cost();
        // Per-gate time overhead factor (time / N) grows only logarithmically.
        let small_factor = small.time / 16.0;
        let large_factor = large.time / (1u64 << 20) as f64;
        assert!(large_factor < small_factor * 6.0);
        assert!(large.sep_guarantee);
        // At scale, ECiM's per-gate overhead factor is well below TRiM's 3x
        // *relative growth*: 1 + log2(N) applies to parity update count per
        // codeword, while TRiM always triples everything it touches.
        assert!(small.sep_guarantee);
    }

    #[test]
    fn table2_has_four_rows_and_all_highlighted_rows_guarantee_sep() {
        let rows = table2_rows(4096);
        assert_eq!(rows.len(), 4);
        for (p, c) in &rows {
            if p.check == Granularity::LogicLevel {
                assert!(c.sep_guarantee, "{p:?} should guarantee SEP");
            }
        }
    }
}
