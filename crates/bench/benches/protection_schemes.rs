//! Criterion benchmarks of the protection schemes themselves: functional
//! protected execution (ECiM / TRiM / unprotected) on a simulated array, and
//! the ablation between multi-output and single-output metadata generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::map_netlist;
use nvpim_core::config::DesignConfig;
use nvpim_core::executor::ProtectedExecutor;
use nvpim_sim::array::PimArray;
use nvpim_sim::technology::Technology;

fn mac_netlist() -> Netlist {
    let mut b = CircuitBuilder::new();
    let acc = b.input_word(8);
    let x = b.input_word(4);
    let y = b.input_word(4);
    let out = b.mac(&acc, &x, &y);
    b.mark_output_word(&out);
    b.finish()
}

fn bench_protected_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("protected_execution_mac8x4");
    group.sample_size(20);
    let netlist = mac_netlist();
    let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
    let tech = Technology::SttMram;
    for (label, config) in [
        ("unprotected", DesignConfig::unprotected(tech)),
        ("ecim_multi_output", DesignConfig::ecim(tech)),
        (
            "ecim_single_output",
            DesignConfig::ecim(tech).with_single_output_gates(),
        ),
        ("trim_multi_output", DesignConfig::trim(tech)),
        (
            "trim_single_output",
            DesignConfig::trim(tech).with_single_output_gates(),
        ),
    ] {
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).expect("schedule fits");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &schedule,
            |b, schedule| {
                b.iter(|| {
                    let mut array = PimArray::standard(tech);
                    executor
                        .run(&netlist, black_box(schedule), &mut array, 0, &inputs)
                        .expect("protected run succeeds")
                })
            },
        );
    }
    group.finish();
}

fn bench_checker_granularity_ablation(c: &mut Criterion) {
    // Ablation: how the analytic overhead estimate responds to the number of
    // parity pipeline blocks (the design knob of §IV-C).
    use nvpim_core::system::{evaluate, WorkloadShape};
    let mut group = c.benchmark_group("ecim_parity_block_ablation");
    group.sample_size(20);
    let netlist = {
        let mut b = CircuitBuilder::new();
        let mut acc = b.constant_word(0, 20);
        for _ in 0..4 {
            let x = b.input_word(8);
            let y = b.input_word(8);
            acc = b.mac(&acc, &x, &y);
        }
        b.mark_output_word(&acc);
        b.finish()
    };
    let shape = WorkloadShape::new("ablation", 256, 1);
    for blocks in [1usize, 2, 4, 8] {
        let mut config = DesignConfig::ecim(Technology::SttMram);
        config.parity_blocks_per_side = blocks;
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &config, |b, config| {
            b.iter(|| evaluate(black_box(&netlist), &shape, config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800)).sample_size(20);
    targets =
    bench_protected_execution,
    bench_checker_granularity_ablation
);
criterion_main!(benches);
