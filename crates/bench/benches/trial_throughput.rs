//! Monte Carlo trial throughput on the paper-regime point: gate error rate
//! 1e-4, ECiM with a shortened Hamming(71, 64) code, 256×256 STT-MRAM
//! array, MAC(8×4) workload.
//!
//! Three series are measured:
//!
//! * `sliced` — the engine's default backend: 64 trials per `u64` lane on
//!   the transposed bit-sliced array, lane-masked skip-sampled faults.
//! * `scalar` — the engine's scalar reference backend (PR 3's hot path):
//!   bit-packed array reset in place, per-thread [`TrialArena`] buffers,
//!   skip-sampled fault injection, allocation-free executor scratch.
//! * `legacy` — the pre-optimization trial shape: a fresh array allocation
//!   per trial, per-operation Bernoulli fault draws, a fresh executor
//!   scratch per run.
//!
//! A fourth series measures the rare-event stratified estimator at a gate
//! rate of 1e-5 on the same point:
//!
//! * `estimator` — conditioned trials (every trial guaranteed ≥ 1 fault in
//!   the decision window) whose *effective* throughput is the raw
//!   conditioned rate divided by `P1 = P(≥1 fault)`, compared against
//!   `exact_rare` — the historical full-simulation path (analytic
//!   zero-fault fast path disabled) at the same rate.
//!
//! A fifth series, `accuracy`, prices the inference-accuracy campaign
//! kind end to end (prepare + trials): DetectRecompute on the ReRAM
//! crossbar with stuck-at defects, where each trial is a full reduced-MLP
//! inference (eight neuron rows) instead of one kernel run.
//!
//! Besides the criterion-style console lines, the bench rewrites
//! `BENCH_trials.json` at the repo root (override with `NVPIM_BENCH_OUT`)
//! with absolute trials/sec for all series, so the perf trajectory
//! is tracked *in-repo* — the committed file is the previous baseline and
//! CI uploads the fresh one as an artifact. Set `NVPIM_BENCH_QUICK=1` to
//! cut sample counts for smoke runs, and `NVPIM_BENCH_GUARD=1` to turn
//! the run into a perf gate: the process exits non-zero when the sliced
//! backend drops below `NVPIM_BENCH_MIN_RATIO`× the scalar backend
//! (default 2.0 — conservative against CI noise; the measured ratio is
//! far higher), below the absolute `NVPIM_BENCH_FLOOR_TPS` floor
//! (default 50000 trials/s), or when the estimator's effective gain over
//! the full-simulation reference drops below
//! `NVPIM_BENCH_MIN_ESTIMATOR_GAIN` (default 5.0). Guard mode also runs a
//! statistical estimator-vs-exact cross-check: the reweighted conditioned
//! failure rate must agree with a plain Monte Carlo estimate within 5σ.

use std::time::Instant;

use criterion::{black_box, Criterion};
use nvpim_sim::array::PimArray;
use nvpim_sim::fault::{ErrorRates, FaultInjector};
use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    derive_trial_seed, run_campaign, trial_stream_seeds, CampaignKind, EstimatorMode, Phase,
    ProtectionConfig, SweepPlan, SweepWorkload, Telemetry, TrialArena, TrialHarness,
};
use nvpim_workloads::Benchmark;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const GATE_ERROR_RATE: f64 = 1e-4;
/// The rare-event regime the stratified estimator is priced at.
const RARE_GATE_ERROR_RATE: f64 = 1e-5;
const CAMPAIGN_SEED: u64 = 0x7147_0000;
const LANES: u64 = 64;

fn quick_mode() -> bool {
    std::env::var("NVPIM_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper-regime point: ECiM/m-o on STT-MRAM with Hamming(71, 64).
fn paper_regime_harness() -> TrialHarness {
    harness_at(ProtectionConfig::ECIM, GATE_ERROR_RATE)
}

fn harness_at(protection: ProtectionConfig, gate_error_rate: f64) -> TrialHarness {
    let config = protection
        .design_config(Technology::SttMram)
        .with_hamming_data_bits(64);
    TrialHarness::new(
        SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        },
        protection,
        config,
        gate_error_rate,
    )
    .expect("bench point compiles")
}

/// One trial the way the pre-optimization engine ran it: fresh array
/// allocation, per-op Bernoulli sampling, fresh per-run scratch.
fn run_trial_legacy(harness: &TrialHarness, trial_index: u64) -> u64 {
    let base_seed = derive_trial_seed(CAMPAIGN_SEED, 0, trial_index);
    let (input_seed, fault_seed) = trial_stream_seeds(base_seed);
    let mut input_rng = ChaCha8Rng::seed_from_u64(input_seed);
    let netlist = &harness.kernel().netlist;
    let inputs: Vec<bool> = (0..netlist.inputs.len())
        .map(|_| input_rng.gen_bool(0.5))
        .collect();
    let expected = netlist.evaluate(&inputs);
    let rates = ErrorRates {
        gate: GATE_ERROR_RATE,
        ..ErrorRates::NONE
    };
    let mut array = PimArray::standard(harness.config().technology)
        .with_fault_injector(FaultInjector::new(rates, fault_seed).with_per_op_sampling());
    let report = harness
        .executor()
        .run(netlist, &harness.kernel().schedule, &mut array, 0, &inputs)
        .expect("trial executes");
    report
        .outputs
        .iter()
        .zip(&expected)
        .filter(|(got, want)| got != want)
        .count() as u64
}

/// Wall-clock trials/sec of `f` called `calls` times, each call covering
/// `trials_per_call` trials.
fn measure(calls: u64, trials_per_call: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for c in 0..calls {
        f(c);
    }
    (calls * trials_per_call) as f64 / start.elapsed().as_secs_f64()
}

fn bench_trial_throughput(c: &mut Criterion) {
    let harness = paper_regime_harness();
    let mut group = c.benchmark_group("trial_throughput");

    group.bench_function("sliced_64_lane_batch", |b| {
        let mut arena = TrialArena::new();
        let mut batch = 0u64;
        b.iter(|| {
            batch += 1;
            black_box(harness.run_trial_batch(CAMPAIGN_SEED, batch * LANES, 64, &mut arena))
        });
    });

    group.bench_function("scalar_packed_arena_skip", |b| {
        let mut arena = TrialArena::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(harness.run_trial(CAMPAIGN_SEED, t, &mut arena))
        });
    });

    group.bench_function("legacy_fresh_bernoulli", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(run_trial_legacy(&harness, t))
        });
    });

    group.finish();
}

struct Series {
    trials: u64,
    trials_per_sec: f64,
}

/// Renders the telemetry snapshot's per-phase breakdown as a JSON object
/// (`{"<phase>": {"spans": N, "total_ns": N}, ...}`, all ten phases in
/// taxonomy order).
fn phases_json(snap: &nvpim_sweep::TelemetrySnapshot) -> String {
    let mut out = String::from("{\n");
    for (i, phase) in Phase::ALL.into_iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"spans\": {}, \"total_ns\": {} }}{}\n",
            phase.name(),
            snap.phase_count(phase),
            snap.phase_nanos(phase),
            if i + 1 == Phase::ALL.len() { "" } else { "," }
        ));
    }
    out.push_str("  }");
    out
}

/// Measures the three series with enough trials for stable ratios, writes
/// `BENCH_trials.json`, and (in guard mode) enforces the perf floor.
fn emit_json_and_guard() {
    let harness = paper_regime_harness();
    let (sliced_batches, scalar_trials, legacy_trials) = if quick_mode() {
        (60u64, 1_000u64, 100u64)
    } else {
        (600u64, 8_000u64, 800u64)
    };

    // The measured arena carries a telemetry sink, so the emitted JSON can
    // break the run down by pipeline phase. Spans cost two monotonic clock
    // reads against multi-microsecond trials; the guard thresholds below
    // hold with instrumentation on, which is itself the overhead gate.
    let telemetry = Telemetry::new();
    let mut arena = TrialArena::with_telemetry(&telemetry);
    for t in 0..64 {
        harness.run_trial(CAMPAIGN_SEED, t, &mut arena);
    }
    harness.run_trial_batch(CAMPAIGN_SEED, 0, 64, &mut arena);

    let sliced = Series {
        trials: sliced_batches * LANES,
        trials_per_sec: measure(sliced_batches, LANES, |b| {
            black_box(harness.run_trial_batch(CAMPAIGN_SEED, b * LANES, 64, &mut arena));
        }),
    };
    let scalar = Series {
        trials: scalar_trials,
        trials_per_sec: measure(scalar_trials, 1, |t| {
            black_box(harness.run_trial(CAMPAIGN_SEED, t, &mut arena));
        }),
    };
    let legacy = Series {
        trials: legacy_trials,
        trials_per_sec: measure(legacy_trials, 1, |t| {
            black_box(run_trial_legacy(&harness, t));
        }),
    };

    // Rare-event estimator series: at a gate rate of 1e-5, conditioned
    // trials (each guaranteed ≥ 1 fault) each stand for 1/P1 plain trials;
    // the fair baseline is the historical full-simulation path with the
    // analytic zero-fault fast path disabled.
    let exact_rare =
        harness_at(ProtectionConfig::ECIM, RARE_GATE_ERROR_RATE).without_analytic_fast_path();
    let conditioned =
        harness_at(ProtectionConfig::ECIM, RARE_GATE_ERROR_RATE).with_stratified_estimator();
    let p1 = conditioned.fault_probability();
    let (exact_rare_trials, conditioned_trials) = if quick_mode() {
        (400u64, 400u64)
    } else {
        (4_000u64, 4_000u64)
    };
    exact_rare.run_trial(CAMPAIGN_SEED, 0, &mut arena);
    conditioned.run_trial(CAMPAIGN_SEED, 0, &mut arena);
    let exact_rare_tps = measure(exact_rare_trials, 1, |t| {
        black_box(exact_rare.run_trial(CAMPAIGN_SEED, t, &mut arena));
    });
    let conditioned_tps = measure(conditioned_trials, 1, |t| {
        black_box(conditioned.run_trial(CAMPAIGN_SEED, t, &mut arena));
    });
    let effective_tps = conditioned_tps / p1;
    let estimator_gain = effective_tps / exact_rare_tps;

    // Accuracy-campaign series: the inference-accuracy kind on the ReRAM
    // crossbar with stuck-at defects, priced as a whole campaign (model
    // generation, netlist compilation, baseline capture, trials) since
    // that is the unit users run. Each trial is a full reduced-MLP
    // inference: eight neuron-row kernel runs plus periphery classify.
    let accuracy_seeds: u64 = if quick_mode() { 64 } else { 256 };
    let accuracy_plan = SweepPlan {
        workloads: vec![SweepWorkload::Benchmark(Benchmark::Mnist {
            weight_bits: 1,
        })],
        technologies: vec![Technology::ReramCrossbar],
        protections: vec![ProtectionConfig::DETECT_RECOMPUTE],
        gate_error_rates: vec![1e-3],
        seeds_per_point: accuracy_seeds,
        campaign_seed: CAMPAIGN_SEED,
        estimator: EstimatorMode::Exact,
        kind: CampaignKind::Accuracy,
        stuck_at_rate: 1e-4,
    };
    let accuracy_start = Instant::now();
    let accuracy_report = run_campaign(&accuracy_plan).expect("accuracy campaign runs");
    let accuracy_tps = accuracy_seeds as f64 / accuracy_start.elapsed().as_secs_f64();
    let measured_accuracy = accuracy_report.points[0]
        .accuracy
        .as_ref()
        .expect("accuracy summary present")
        .accuracy;

    arena.flush_telemetry();
    let phase_breakdown = phases_json(&telemetry.snapshot());

    let out_path = std::env::var("NVPIM_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_trials.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"trial_throughput\",\n",
            "  \"point\": {{\n",
            "    \"workload\": \"mac8x4\",\n",
            "    \"protection\": \"ECiM/m-o\",\n",
            "    \"technology\": \"{tech}\",\n",
            "    \"code\": \"Hamming({n},{k})\",\n",
            "    \"gate_error_rate\": {rate},\n",
            "    \"array\": \"256x256\"\n",
            "  }},\n",
            "  \"series\": {{\n",
            "    \"sliced\": {{ \"trials\": {st}, \"trials_per_sec\": {stps:.1} }},\n",
            "    \"scalar\": {{ \"trials\": {ct}, \"trials_per_sec\": {ctps:.1} }},\n",
            "    \"legacy\": {{ \"trials\": {lt}, \"trials_per_sec\": {ltps:.1} }},\n",
            "    \"exact_rare\": {{ \"gate_error_rate\": {rrate}, \"trials\": {ert}, ",
            "\"trials_per_sec\": {ertps:.1} }},\n",
            "    \"estimator\": {{ \"gate_error_rate\": {rrate}, \"trials\": {et}, ",
            "\"trials_per_sec\": {etps:.1}, \"fault_probability\": {p1:.6e}, ",
            "\"effective_trials_per_sec\": {efftps:.1} }},\n",
            "    \"accuracy\": {{ \"workload\": \"mnist/wb1\", \"protection\": ",
            "\"detect-recompute/m-o\", \"technology\": \"ReRAM-crossbar\", ",
            "\"gate_error_rate\": 1e-3, \"stuck_at_rate\": 1e-4, \"trials\": {at}, ",
            "\"trials_per_sec\": {atps:.1}, \"top1_accuracy\": {aacc:.4} }}\n",
            "  }},\n",
            "  \"sliced_trials_per_sec\": {stps:.1},\n",
            "  \"scalar_trials_per_sec\": {ctps:.1},\n",
            "  \"speedup_sliced_vs_scalar\": {svc:.2},\n",
            "  \"speedup_scalar_vs_legacy\": {cvl:.2},\n",
            "  \"estimator_effective_gain\": {egain:.2},\n",
            "  \"accuracy_trials_per_sec\": {atps:.1},\n",
            "  \"phases\": {phases},\n",
            "  \"note\": \"sliced = 64-trials-per-u64-lane transposed backend (the engine ",
            "default); scalar = the per-trial packed-arena reference backend; legacy = ",
            "fresh array + per-op Bernoulli + fresh scratch, replaying the engine's exact ",
            "per-trial input/fault streams. All three produce identical per-trial ",
            "outcomes; see docs/performance.md for the measured history. ",
            "estimator = stratified rare-event mode at gate rate 1e-5: conditioned ",
            "trials reweighted by P1, effective rate = trials_per_sec / P1, measured ",
            "against exact_rare, the full-simulation path at the same rate with the ",
            "analytic zero-fault fast path disabled. accuracy = the inference-accuracy ",
            "campaign kind, whole-campaign rate (each trial is one reduced-MLP ",
            "inference on the defect-bearing ReRAM crossbar)\"\n",
            "}}\n"
        ),
        tech = harness.config().technology,
        n = harness.executor().code().n(),
        k = harness.executor().code().k(),
        rate = GATE_ERROR_RATE,
        st = sliced.trials,
        ct = scalar.trials,
        lt = legacy.trials,
        stps = sliced.trials_per_sec,
        ctps = scalar.trials_per_sec,
        ltps = legacy.trials_per_sec,
        svc = sliced.trials_per_sec / scalar.trials_per_sec,
        cvl = scalar.trials_per_sec / legacy.trials_per_sec,
        rrate = RARE_GATE_ERROR_RATE,
        ert = exact_rare_trials,
        ertps = exact_rare_tps,
        et = conditioned_trials,
        etps = conditioned_tps,
        p1 = p1,
        efftps = effective_tps,
        egain = estimator_gain,
        at = accuracy_seeds,
        atps = accuracy_tps,
        aacc = measured_accuracy,
        phases = phase_breakdown,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}\n{json}"),
        Err(err) => eprintln!("could not write {out_path}: {err}"),
    }

    // Perf guard (CI): the sliced backend must stay comfortably ahead of
    // scalar and above an absolute floor. Both thresholds are deliberately
    // conservative — the measured ratio is tens of ×, so tripping this
    // gate means a real regression, not noise.
    if std::env::var("NVPIM_BENCH_GUARD")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        let min_ratio = env_f64("NVPIM_BENCH_MIN_RATIO", 2.0);
        let floor_tps = env_f64("NVPIM_BENCH_FLOOR_TPS", 50_000.0);
        let ratio = sliced.trials_per_sec / scalar.trials_per_sec;
        let mut failed = false;
        if ratio < min_ratio {
            eprintln!(
                "PERF GUARD FAILED: sliced/scalar ratio {ratio:.2} < required {min_ratio:.2}"
            );
            failed = true;
        }
        if sliced.trials_per_sec < floor_tps {
            eprintln!(
                "PERF GUARD FAILED: sliced throughput {:.0} trials/s < floor {floor_tps:.0}",
                sliced.trials_per_sec
            );
            failed = true;
        }
        let min_gain = env_f64("NVPIM_BENCH_MIN_ESTIMATOR_GAIN", 5.0);
        if estimator_gain < min_gain {
            eprintln!(
                "PERF GUARD FAILED: estimator effective gain {estimator_gain:.2} < required \
                 {min_gain:.2} (conditioned {conditioned_tps:.0} trials/s / P1 {p1:.3e} vs \
                 full-sim {exact_rare_tps:.0} trials/s)"
            );
            failed = true;
        }
        // The accuracy campaign runs whole inferences per trial, so its
        // floor is orders of magnitude below the kernel-trial floors —
        // but an accidental per-trial recompile or precompute loss would
        // still crater it well past this gate.
        let accuracy_floor = env_f64("NVPIM_BENCH_MIN_ACCURACY_TPS", 20.0);
        if accuracy_tps < accuracy_floor {
            eprintln!(
                "PERF GUARD FAILED: accuracy-campaign throughput {accuracy_tps:.1} trials/s \
                 < floor {accuracy_floor:.1}"
            );
            failed = true;
        }
        if !(0.0..=1.0).contains(&measured_accuracy) {
            eprintln!("PERF GUARD FAILED: measured accuracy {measured_accuracy} outside [0, 1]");
            failed = true;
        }
        if let Err(msg) = estimator_cross_check() {
            eprintln!("PERF GUARD FAILED: {msg}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "perf guard OK: sliced {:.0} trials/s = {ratio:.1}x scalar (floor {floor_tps:.0}, \
             min ratio {min_ratio:.1}); estimator effective gain {estimator_gain:.1}x \
             (min {min_gain:.1}); accuracy campaign {accuracy_tps:.0} trials/s \
             (floor {accuracy_floor:.0}); estimator-vs-exact cross-check within 5 sigma",
            sliced.trials_per_sec
        );
    }
}

/// Statistical estimator-vs-exact cross-check (guard mode only): on the
/// unprotected scheme at gate rate 1e-4 — where output failures are common
/// enough for a plain Monte Carlo estimate to be meaningful — the
/// reweighted conditioned failure rate must agree with the exact-mode
/// failure rate within 5σ of the combined sampling noise.
fn estimator_cross_check() -> Result<(), String> {
    const CROSS_RATE: f64 = 1e-4;
    let (exact_n, conditioned_n) = if quick_mode() {
        (2_000u64, 500u64)
    } else {
        (8_000u64, 2_000u64)
    };
    let exact = harness_at(ProtectionConfig::UNPROTECTED, CROSS_RATE);
    let conditioned =
        harness_at(ProtectionConfig::UNPROTECTED, CROSS_RATE).with_stratified_estimator();
    let p1 = conditioned.fault_probability();
    let mut arena = TrialArena::new();
    let mut exact_failures = 0u64;
    for t in 0..exact_n {
        if exact.run_trial(CAMPAIGN_SEED, t, &mut arena).failed() {
            exact_failures += 1;
        }
    }
    let mut conditioned_failures = 0u64;
    for t in 0..conditioned_n {
        // Independent seed stream from the exact side.
        if conditioned
            .run_trial(CAMPAIGN_SEED ^ 1, t, &mut arena)
            .failed()
        {
            conditioned_failures += 1;
        }
    }
    let exact_rate = exact_failures as f64 / exact_n as f64;
    let q = conditioned_failures as f64 / conditioned_n as f64;
    let stratified_rate = p1 * q;
    let variance = exact_rate * (1.0 - exact_rate) / exact_n as f64
        + p1 * p1 * q * (1.0 - q) / conditioned_n as f64;
    let tolerance = 5.0 * variance.sqrt() + 1e-9;
    let diff = (stratified_rate - exact_rate).abs();
    if diff > tolerance {
        return Err(format!(
            "estimator cross-check: stratified rate {stratified_rate:.4e} (P1 {p1:.3e} x q \
             {q:.4}) vs exact rate {exact_rate:.4e} differ by {diff:.3e} > 5 sigma {tolerance:.3e}"
        ));
    }
    Ok(())
}

fn main() {
    let mut criterion = Criterion::default();
    bench_trial_throughput(&mut criterion);
    emit_json_and_guard();
}
