//! Campaign results: per-trial outcomes, per-point aggregates and the
//! serializable [`SweepReport`].

use serde::Serialize;

use crate::engine::PointContext;
use crate::plan::SweepPlan;

/// Raw counters from one Monte Carlo trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TrialOutcome {
    /// Faults the injector actually fired during the trial.
    pub faults_injected: u64,
    /// Checker invocations.
    pub checks: u64,
    /// Checks that detected an error.
    pub errors_detected: u64,
    /// Data bits corrected and written back.
    pub corrections_written_back: u64,
    /// Checks whose error pattern exceeded the correction capability.
    pub uncorrectable: u64,
    /// Final output bits differing from the fault-free reference.
    pub wrong_output_bits: u64,
    /// Execution error, if the trial failed to run at all.
    pub exec_error: Option<String>,
}

impl TrialOutcome {
    /// Whether the final output was wrong (a failed trial).
    pub fn failed(&self) -> bool {
        self.wrong_output_bits > 0
    }

    /// A *silent* failure: wrong output with no uncorrectable flag — the
    /// scheme believed the computation was fine (or corrected), yet the
    /// result is corrupt. This is the error class SEP exists to eliminate.
    pub fn silent_failure(&self) -> bool {
        self.failed() && self.uncorrectable == 0
    }
}

/// Aggregated results of one campaign point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointSummary {
    /// Workload name.
    pub workload: String,
    /// Technology label.
    pub technology: String,
    /// Protection label (e.g. `"ECiM/m-o"`).
    pub protection: String,
    /// Gate-output bit-flip probability of this point.
    pub gate_error_rate: f64,
    /// Trials run.
    pub trials: u64,
    /// Total faults injected across the trials.
    pub faults_injected: u64,
    /// Total Checker invocations.
    pub checks: u64,
    /// Checks that detected an error.
    pub errors_detected: u64,
    /// Corrections written back to the array.
    pub corrections_written_back: u64,
    /// Checks flagged uncorrectable.
    pub uncorrectable_checks: u64,
    /// Trials whose final output was wrong.
    pub failed_trials: u64,
    /// Failed trials that raised no uncorrectable flag (silent errors).
    pub silent_failures: u64,
    /// Total wrong output bits across all trials.
    pub wrong_output_bits: u64,
    /// `failed_trials / (trials − exec_errors)` — the denominator counts
    /// only trials that actually executed, so a broken point (all trials
    /// erroring) cannot masquerade as a perfect 0.0 error rate. `NaN`-free:
    /// reported as 0.0 when nothing executed (check [`Self::exec_errors`]).
    pub output_error_rate: f64,
    /// Trials that could not execute at all. Always inspect alongside
    /// [`Self::output_error_rate`]: a nonzero value means the point's
    /// statistics rest on fewer trials than planned.
    pub exec_errors: u64,
    /// Analytic per-row execution time estimate (ns) from the system model.
    pub est_time_ns: f64,
    /// Analytic per-row energy estimate (fJ) from the system model.
    pub est_energy_fj: f64,
}

impl PointSummary {
    /// Folds a point's trial outcomes (in trial order) into a summary.
    pub(crate) fn aggregate(ctx: &PointContext, outcomes: &[TrialOutcome]) -> Self {
        let trials = outcomes.len() as u64;
        let mut s = PointSummary {
            // Labels were formatted exactly once at preparation time (from
            // the scheme runtime's `&'static str` name); report assembly
            // only clones the cached strings.
            workload: ctx.workload_name.clone(),
            technology: ctx.technology_label.clone(),
            protection: ctx.protection_label.clone(),
            gate_error_rate: ctx.gate_error_rate,
            trials,
            faults_injected: 0,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable_checks: 0,
            failed_trials: 0,
            silent_failures: 0,
            wrong_output_bits: 0,
            output_error_rate: 0.0,
            exec_errors: 0,
            est_time_ns: ctx.est_time_ns,
            est_energy_fj: ctx.est_energy_fj,
        };
        for o in outcomes {
            s.faults_injected += o.faults_injected;
            s.checks += o.checks;
            s.errors_detected += o.errors_detected;
            s.corrections_written_back += o.corrections_written_back;
            s.uncorrectable_checks += o.uncorrectable;
            s.wrong_output_bits += o.wrong_output_bits;
            if o.failed() {
                s.failed_trials += 1;
            }
            if o.silent_failure() {
                s.silent_failures += 1;
            }
            if o.exec_error.is_some() {
                s.exec_errors += 1;
            }
        }
        let executed = trials - s.exec_errors;
        if executed > 0 {
            s.output_error_rate = s.failed_trials as f64 / executed as f64;
        }
        s
    }
}

/// The serializable result of a whole campaign.
///
/// Field order is declaration order and every value derives solely from the
/// plan and the trial outcomes (never from wall-clock time or thread
/// scheduling), so `to_json()` is byte-identical across runs and across
/// `RAYON_NUM_THREADS` settings.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// Report schema version.
    pub schema_version: u32,
    /// The campaign's root seed.
    pub campaign_seed: u64,
    /// Trials per point.
    pub seeds_per_point: u64,
    /// Total trials run.
    pub total_trials: u64,
    /// Total failed trials across all points.
    pub total_failed_trials: u64,
    /// Total trials that could not execute, across all points (nonzero
    /// means some points' statistics rest on fewer trials than planned).
    pub total_exec_errors: u64,
    /// Distinct schedules the cache compiled (vs `points.len()` had every
    /// trial recompiled its own mapping).
    pub schedules_compiled: usize,
    /// Per-point aggregates, in plan (cartesian) order.
    pub points: Vec<PointSummary>,
}

impl SweepReport {
    pub(crate) fn new(
        plan: &SweepPlan,
        points: Vec<PointSummary>,
        schedules_compiled: usize,
    ) -> Self {
        let total_trials = points.iter().map(|p| p.trials).sum();
        let total_failed_trials = points.iter().map(|p| p.failed_trials).sum();
        let total_exec_errors = points.iter().map(|p| p.exec_errors).sum();
        SweepReport {
            schema_version: 1,
            campaign_seed: plan.campaign_seed,
            seeds_per_point: plan.seeds_per_point,
            total_trials,
            total_failed_trials,
            total_exec_errors,
            schedules_compiled,
            points,
        }
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_failure_classification() {
        let base = TrialOutcome {
            faults_injected: 2,
            checks: 10,
            errors_detected: 1,
            corrections_written_back: 1,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: None,
        };
        assert!(!base.failed());
        let silent = TrialOutcome {
            wrong_output_bits: 3,
            ..base.clone()
        };
        assert!(silent.failed() && silent.silent_failure());
        let loud = TrialOutcome {
            wrong_output_bits: 3,
            uncorrectable: 1,
            ..base
        };
        assert!(loud.failed() && !loud.silent_failure());
    }
}
