//! Regenerates Fig. 8: parity bits required by BCH-255 as a function of the
//! number of correctable errors, against the Hamming(255, 247) baseline.

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_ecc::bch::BchCode;
use serde::Serialize;

#[derive(Serialize)]
struct ParityRow {
    correctable_errors: usize,
    bch_255_parity_bits: usize,
    hamming_255_247_parity_bits: usize,
}

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Fig. 8 — parity bits vs correctable errors (BCH-255)\n");
    let max_t = if opts.quick { 4 } else { 10 };
    let rows: Vec<ParityRow> = (1..=max_t)
        .map(|t| ParityRow {
            correctable_errors: t,
            bch_255_parity_bits: BchCode::parity_bits_for(8, t)
                .expect("BCH-255 supports t in 1..=10"),
            hamming_255_247_parity_bits: 8,
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.correctable_errors.to_string(),
                r.bch_255_parity_bits.to_string(),
                r.hamming_255_247_parity_bits.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "correctable errors",
            "BCH-255 parity bits",
            "Hamming(255,247)",
        ],
        &table,
    );
    if opts.json {
        print_json(&rows);
    }
}
