//! Campaign-level determinism: the serialized report must be a pure
//! function of the plan — independent of thread count and repeatable
//! across runs — and distinct campaign seeds must actually change results.
//!
//! NOTE: this file must contain exactly one `#[test]`, because it mutates
//! the process-global `RAYON_NUM_THREADS` variable — sibling tests in the
//! same binary would run concurrently and race the env reads (the reason
//! `set_var` is unsafe in edition 2024). Campaign tests that don't touch
//! the environment belong in other test files (separate binaries, which
//! cargo runs sequentially).

use nvpim_sweep::{run_campaign, SweepPlan};

#[test]
fn report_json_is_byte_identical_across_thread_counts_and_runs() {
    let plan = SweepPlan::quick();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_threaded = run_campaign(&plan).unwrap().to_json();
    let single_threaded_again = run_campaign(&plan).unwrap().to_json();

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four_threads = run_campaign(&plan).unwrap().to_json();

    std::env::remove_var("RAYON_NUM_THREADS");
    let default_threads = run_campaign(&plan).unwrap().to_json();

    assert_eq!(
        single_threaded, single_threaded_again,
        "same plan, same thread count → identical JSON"
    );
    assert_eq!(
        single_threaded, four_threads,
        "RAYON_NUM_THREADS=1 vs 4 must not change the report"
    );
    assert_eq!(
        single_threaded, default_threads,
        "default thread count must not change the report"
    );

    // A different campaign seed must actually change trial outcomes
    // (otherwise the determinism above would be vacuous).
    let mut reseeded = plan.clone();
    reseeded.campaign_seed ^= 0xDEAD_BEEF;
    let other = run_campaign(&reseeded).unwrap().to_json();
    assert_ne!(single_threaded, other, "campaign seed must matter");
}
