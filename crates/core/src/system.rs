//! Full-system timing and energy model (§IV-B, §V, §VI).
//!
//! The paper evaluates ECiM and TRiM with a cycle-accurate simulator driven
//! by the per-row gate schedule, the Table III technology parameters and the
//! iso-area reclaim behaviour. This module reproduces that evaluation
//! analytically from the compiled [`RowSchedule`]: because every row of the
//! fleet executes the same schedule on different data, the wall-clock time is
//! the per-row schedule time (with Checker communication overlapped across
//! rows per Fig. 4) and the energy is the per-row energy scaled by the number
//! of active rows.
//!
//! ## Model summary (and how it maps to the paper)
//!
//! * **Computation** — one gate operation per scheduled NOR/THR/copy per
//!   row, at the technology's switching delay; fusable copies are free in
//!   time for multi-output designs.
//! * **ECiM metadata** — every gate output triggers, for each parity bit in
//!   its codeword column (≈ `w` of the `n−k` bits), a two-step in-memory XOR.
//!   These run in the left/right parity-block partitions concurrently with
//!   computation (Fig. 5); the level stalls only when the parity pipeline's
//!   throughput (`2 × parity_blocks_per_side` concurrent operations) cannot
//!   keep up.
//! * **TRiM metadata** — redundant copies are produced by the same gate
//!   (multi-output) or by concurrent single-output gates in other
//!   partitions; no stall, but three times the gate energy and data volume.
//! * **Checker communication** — one conventional read of the level's
//!   outputs plus metadata per row per logic level. Transfers overlap with
//!   other rows' computation (delayed start, Fig. 4); only the pipeline
//!   drain per level remains on the critical path.
//! * **Area reclaims** — straight from the allocator (Table IV); each event
//!   presets its recycled cells at `reclaim_parallelism` cells per step and
//!   pays one write per cell.

use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::{map_netlist, MapError, RowSchedule};
use nvpim_sim::periphery::PeripheryModel;
use nvpim_sim::technology::TechnologyParams;
use serde::{Deserialize, Serialize};

use crate::config::{DesignConfig, GateStyle};
use crate::scheme::CostEnv;

/// How a workload is spread over the PiM fleet (§V: all benchmarks map to at
/// most sixteen 256×256 arrays; each active row runs the same per-row
/// program on different data).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadShape {
    /// Benchmark name (e.g. `"mm8"`).
    pub name: String,
    /// Number of rows, across the whole fleet, executing the per-row program.
    pub parallel_rows: usize,
    /// Number of arrays used.
    pub arrays: usize,
}

impl WorkloadShape {
    /// Creates a shape, clamping the array count to the paper's 16-array fleet.
    pub fn new(name: impl Into<String>, parallel_rows: usize, arrays: usize) -> Self {
        Self {
            name: name.into(),
            parallel_rows: parallel_rows.max(1),
            arrays: arrays.clamp(1, 16),
        }
    }
}

/// Cost breakdown of one design point on one workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Time spent in main-computation gate operations (ns).
    pub compute_time_ns: f64,
    /// Extra time when the metadata pipeline cannot keep up plus the per-level
    /// pipeline drain (ns).
    pub metadata_time_ns: f64,
    /// Non-overlappable Checker communication and decode time (ns).
    pub checker_time_ns: f64,
    /// Time spent presetting recycled cells during area reclaims (ns).
    pub reclaim_time_ns: f64,
    /// Time spent spilling/reloading values to other rows (ns).
    pub spill_time_ns: f64,
    /// Time spent staging primary inputs (ns).
    pub input_time_ns: f64,
    /// Main-computation gate energy (fJ).
    pub compute_energy_fj: f64,
    /// Metadata-generation gate energy: parity copies and XOR updates, or
    /// redundant computation (fJ).
    pub metadata_energy_fj: f64,
    /// Cell-write energy: input staging, reclaim presets, parity resets,
    /// spills (fJ).
    pub write_energy_fj: f64,
    /// Array-interface energy for Checker communication (fJ).
    pub checker_comm_energy_fj: f64,
    /// Checker decode / vote logic energy (fJ).
    pub checker_logic_energy_fj: f64,
}

impl CostBreakdown {
    /// Total time (ns).
    pub fn total_time_ns(&self) -> f64 {
        self.compute_time_ns
            + self.metadata_time_ns
            + self.checker_time_ns
            + self.reclaim_time_ns
            + self.spill_time_ns
            + self.input_time_ns
    }

    /// Total energy (fJ).
    pub fn total_energy_fj(&self) -> f64 {
        self.compute_energy_fj
            + self.metadata_energy_fj
            + self.write_energy_fj
            + self.checker_comm_energy_fj
            + self.checker_logic_energy_fj
    }
}

/// Summary of the compiled schedule a design point produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSummary {
    /// Gate operations per row.
    pub gate_ops: usize,
    /// Logic levels.
    pub depth: usize,
    /// Area reclaim events (the Table IV metric).
    pub reclaims: usize,
    /// Spill stores.
    pub spills: usize,
    /// Primary output bits.
    pub output_bits: usize,
}

/// The estimate for one design point on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Design label (e.g. `"ECiM/m-o/STT-MRAM"`).
    pub design: String,
    /// Workload name.
    pub workload: String,
    /// Per-row wall-clock time (ns).
    pub time_ns: f64,
    /// Fleet energy (fJ), scaled by the number of active rows.
    pub energy_fj: f64,
    /// Bits transferred to the Checker per row over the whole run.
    pub checker_traffic_bits: u64,
    /// Cost breakdown (per row; energy terms already scaled by rows).
    pub breakdown: CostBreakdown,
    /// Schedule summary.
    pub schedule: ScheduleSummary,
}

/// Overheads of a protected design relative to the unprotected iso-area
/// baseline (the quantities of Fig. 7 and Table V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Design label.
    pub design: String,
    /// Workload name.
    pub workload: String,
    /// Time overhead in percent (Fig. 7).
    pub time_overhead_pct: f64,
    /// Energy overhead as a ratio `(protected − baseline) / baseline`
    /// (Table V).
    pub energy_overhead: f64,
    /// Area reclaim count of the protected design (Table IV).
    pub reclaims: usize,
    /// Area reclaim count of the baseline.
    pub baseline_reclaims: usize,
}

/// Fraction of each Checker transfer that cannot be hidden behind other
/// rows' computation under the delayed-start schedule of Fig. 4 (interface
/// occupancy conflicts with this row's own compute window). The remaining
/// transfer time and the Checker's decode latency are fully overlapped.
pub const CHECKER_EXPOSED_FRACTION: f64 = 0.15;

/// Compares a protected estimate against the unprotected baseline.
pub fn compare(protected: &ExecutionEstimate, baseline: &ExecutionEstimate) -> OverheadReport {
    OverheadReport {
        design: protected.design.clone(),
        workload: protected.workload.clone(),
        time_overhead_pct: 100.0 * (protected.time_ns - baseline.time_ns) / baseline.time_ns,
        energy_overhead: (protected.energy_fj - baseline.energy_fj) / baseline.energy_fj,
        reclaims: protected.schedule.reclaims,
        baseline_reclaims: baseline.schedule.reclaims,
    }
}

/// Evaluates one design point on a workload: compiles the per-row netlist
/// for the design's iso-area layout and applies the timing/energy model.
///
/// # Errors
///
/// Propagates [`MapError`] when the workload cannot fit the row even with
/// spilling.
pub fn evaluate(
    netlist: &Netlist,
    shape: &WorkloadShape,
    config: &DesignConfig,
) -> Result<ExecutionEstimate, MapError> {
    let schedule = map_netlist(netlist, config.row_layout())?;
    Ok(evaluate_schedule(&schedule, shape, config))
}

/// Applies the timing/energy model to an already-compiled schedule.
pub fn evaluate_schedule(
    schedule: &RowSchedule,
    shape: &WorkloadShape,
    config: &DesignConfig,
) -> ExecutionEstimate {
    let params: TechnologyParams = config.technology.parameters();
    let periphery = PeripheryModel::for_technology(config.technology);
    let t_gate = params.gate_delay_ns();
    let nor_e = params.nor_energy_fj;
    let thr_e = params.thr_energy_fj;
    let write_e = params.write_energy_fj;

    let multi_output = config.gate_style == GateStyle::MultiOutput;
    let mut b = CostBreakdown::default();

    // --- main computation (identical for every scheme) ---
    for level in &schedule.level_profile {
        let free_copies = if multi_output {
            level.fusable_copies
        } else {
            0
        };
        let compute_ops = (level.nor_ops + level.thr_ops + level.copy_ops - free_copies) as f64;
        let outputs = (level.nor_ops + level.thr_ops + level.copy_ops) as f64;
        if outputs == 0.0 {
            continue;
        }
        b.compute_time_ns += compute_ops * t_gate;
        let base_nor_energy = (level.nor_ops + level.copy_ops) as f64 * nor_e;
        let base_thr_energy = level.thr_ops as f64 * thr_e;
        b.compute_energy_fj += base_nor_energy + base_thr_energy;
    }

    // --- scheme metadata, Checker communication and pipeline stalls ---
    // (dispatched through the scheme runtime; see `SchemeRuntime::metadata_costs`)
    let env = CostEnv {
        t_gate,
        nor_e,
        thr_e,
        write_e,
        multi_output,
        periphery: periphery.clone(),
    };
    let checker_traffic_bits = config
        .scheme
        .runtime()
        .metadata_costs(schedule, config, &env, &mut b);

    // --- area reclaims ---
    let reclaim_parallelism = config.reclaim_parallelism.max(1) as f64;
    for reclaim in &schedule.reclaims {
        let cells = reclaim.cells_freed as f64;
        b.reclaim_time_ns += (cells / reclaim_parallelism).ceil() * t_gate;
        b.write_energy_fj += cells * write_e + periphery.write_energy(reclaim.cells_freed);
    }

    // --- spills ---
    let spill_events = (schedule.spill_stores + schedule.spill_loads) as f64;
    b.spill_time_ns += schedule.spill_stores as f64 * periphery.write_latency(1)
        + schedule.spill_loads as f64 * periphery.read_latency(1);
    b.write_energy_fj += spill_events * (write_e + periphery.write_energy(1));

    // --- input staging (identical mechanism for every design; TRiM writes
    // every copy) ---
    let copies = config.cells_per_value() as f64;
    b.input_time_ns += schedule.input_writes as f64 * t_gate;
    b.write_energy_fj +=
        schedule.input_writes as f64 * copies * (write_e + periphery.write_energy(1) / 8.0);

    // --- final output read (same for every design) ---
    let out_bits = schedule.output_bits();
    b.checker_comm_energy_fj += periphery.read_energy(out_bits);
    b.checker_time_ns += periphery.read_latency(out_bits);

    // Scale energy to the whole fleet.
    let rows = shape.parallel_rows as f64;
    b.compute_energy_fj *= rows;
    b.metadata_energy_fj *= rows;
    b.write_energy_fj *= rows;
    b.checker_comm_energy_fj *= rows;
    b.checker_logic_energy_fj *= rows;

    ExecutionEstimate {
        design: config.label(),
        workload: shape.name.clone(),
        time_ns: b.total_time_ns(),
        energy_fj: b.total_energy_fj(),
        checker_traffic_bits,
        breakdown: b,
        schedule: ScheduleSummary {
            gate_ops: schedule.gate_op_count(),
            depth: schedule.depth(),
            reclaims: schedule.reclaim_count(),
            spills: schedule.spill_stores,
            output_bits: schedule.output_bits(),
        },
    }
}

/// Evaluates ECiM, TRiM and the unprotected baseline on one workload and
/// returns `(ecim_overheads, trim_overheads)` against the baseline, using
/// multi-output gates (the Fig. 7 configuration).
///
/// # Errors
///
/// Propagates [`MapError`] from any of the three compilations.
pub fn evaluate_benchmark(
    netlist: &Netlist,
    shape: &WorkloadShape,
    technology: nvpim_sim::technology::Technology,
) -> Result<(OverheadReport, OverheadReport), MapError> {
    let baseline = evaluate(netlist, shape, &DesignConfig::unprotected(technology))?;
    let ecim = evaluate(netlist, shape, &DesignConfig::ecim(technology))?;
    let trim = evaluate(netlist, shape, &DesignConfig::trim(technology))?;
    Ok((compare(&ecim, &baseline), compare(&trim, &baseline)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_compiler::builder::CircuitBuilder;
    use nvpim_sim::technology::Technology;

    /// A dot-product row program: `n` MACs of `bits`-bit operands.
    fn dot_product_netlist(n: usize, bits: usize) -> Netlist {
        let mut b = CircuitBuilder::new();
        let mut acc = b.constant_word(0, 2 * bits + 8);
        for _ in 0..n {
            let x = b.input_word(bits);
            let y = b.input_word(bits);
            acc = b.mac(&acc, &x, &y);
        }
        b.mark_output_word(&acc);
        b.finish()
    }

    fn shape(name: &str) -> WorkloadShape {
        WorkloadShape::new(name, 256, 4)
    }

    #[test]
    fn baseline_has_no_checker_traffic() {
        let netlist = dot_product_netlist(2, 4);
        let est = evaluate(
            &netlist,
            &shape("tiny"),
            &DesignConfig::unprotected(Technology::SttMram),
        )
        .unwrap();
        assert_eq!(est.checker_traffic_bits, 0);
        assert_eq!(est.breakdown.metadata_energy_fj, 0.0);
        assert!(est.time_ns > 0.0);
        assert!(est.energy_fj > 0.0);
    }

    #[test]
    fn protected_designs_cost_more_than_the_baseline() {
        let netlist = dot_product_netlist(4, 4);
        let s = shape("small");
        for tech in Technology::ALL {
            let baseline = evaluate(&netlist, &s, &DesignConfig::unprotected(tech)).unwrap();
            for config in [DesignConfig::ecim(tech), DesignConfig::trim(tech)] {
                let est = evaluate(&netlist, &s, &config).unwrap();
                assert!(est.time_ns > baseline.time_ns, "{}", config.label());
                assert!(est.energy_fj > baseline.energy_fj, "{}", config.label());
                let overhead = compare(&est, &baseline);
                assert!(overhead.time_overhead_pct > 0.0);
                assert!(overhead.energy_overhead > 0.0);
            }
        }
    }

    #[test]
    fn single_output_designs_cost_more_energy_than_multi_output() {
        let netlist = dot_product_netlist(4, 4);
        let s = shape("small");
        for scheme_cfg in [
            DesignConfig::ecim(Technology::SttMram),
            DesignConfig::trim(Technology::SttMram),
        ] {
            let mo = evaluate(&netlist, &s, &scheme_cfg).unwrap();
            let so =
                evaluate(&netlist, &s, &scheme_cfg.clone().with_single_output_gates()).unwrap();
            assert!(
                so.energy_fj > mo.energy_fj,
                "{}: s-o {} <= m-o {}",
                scheme_cfg.label(),
                so.energy_fj,
                mo.energy_fj
            );
        }
    }

    #[test]
    fn trim_reclaims_exceed_ecim_reclaims() {
        // Table IV's headline trend.
        let netlist = dot_product_netlist(8, 8);
        let s = shape("mm-like");
        let ecim = evaluate(&netlist, &s, &DesignConfig::ecim(Technology::SttMram)).unwrap();
        let trim = evaluate(&netlist, &s, &DesignConfig::trim(Technology::SttMram)).unwrap();
        let base = evaluate(
            &netlist,
            &s,
            &DesignConfig::unprotected(Technology::SttMram),
        )
        .unwrap();
        assert!(trim.schedule.reclaims > ecim.schedule.reclaims);
        assert!(ecim.schedule.reclaims >= base.schedule.reclaims);
    }

    #[test]
    fn trim_time_overhead_grows_faster_with_problem_size_than_ecim() {
        // Fig. 7's crossover: TRiM is competitive on small problems but its
        // overhead grows faster as problem size (and hence reclaim pressure)
        // grows.
        let small = dot_product_netlist(2, 4);
        let large = dot_product_netlist(16, 8);
        let s = shape("sweep");
        let tech = Technology::SttMram;

        let (ecim_small, trim_small) = evaluate_benchmark(&small, &s, tech).unwrap();
        let (ecim_large, trim_large) = evaluate_benchmark(&large, &s, tech).unwrap();

        let ecim_growth = ecim_large.time_overhead_pct / ecim_small.time_overhead_pct.max(0.01);
        let trim_growth = trim_large.time_overhead_pct / trim_small.time_overhead_pct.max(0.01);
        assert!(
            trim_growth > ecim_growth,
            "TRiM overhead growth ({trim_growth:.2}x) should exceed ECiM's ({ecim_growth:.2}x)"
        );
        // The absolute crossover (ECiM undercutting TRiM) appears on the
        // workloads with the largest working sets (the FFT family); it is
        // asserted by the `paper_trends` integration tests.
    }

    #[test]
    fn time_overheads_are_in_a_plausible_range() {
        // The paper reports protected-design time overheads below ~50% for
        // multi-output designs; the model should land in the same regime.
        let netlist = dot_product_netlist(16, 8);
        let s = shape("mm64-row");
        let (ecim, trim) = evaluate_benchmark(&netlist, &s, Technology::SttMram).unwrap();
        assert!(
            ecim.time_overhead_pct > 1.0 && ecim.time_overhead_pct < 100.0,
            "{ecim:?}"
        );
        assert!(
            trim.time_overhead_pct > 1.0 && trim.time_overhead_pct < 150.0,
            "{trim:?}"
        );
    }

    #[test]
    fn checker_traffic_scales_with_redundancy() {
        // TRiM ships three copies of every protected output to the Checker;
        // ECiM ships one copy plus the (n-k) parity bits per check. With the
        // narrow check groups of a carry-chain-heavy netlist the fixed parity
        // term can dominate, so the invariants are stated per output.
        let netlist = dot_product_netlist(8, 4);
        let s = shape("traffic");
        let ecim = evaluate(&netlist, &s, &DesignConfig::ecim(Technology::ReRam)).unwrap();
        let trim = evaluate(&netlist, &s, &DesignConfig::trim(Technology::ReRam)).unwrap();
        let outputs = trim.schedule.gate_ops as u64;
        assert_eq!(trim.checker_traffic_bits, 3 * outputs);
        assert!(ecim.checker_traffic_bits >= outputs);
        assert!(ecim.checker_traffic_bits < 3 * outputs + 8 * outputs);
    }

    #[test]
    fn evaluate_schedule_is_deterministic() {
        let netlist = dot_product_netlist(3, 4);
        let config = DesignConfig::ecim(Technology::SotSheMram);
        let s = shape("det");
        let a = evaluate(&netlist, &s, &config).unwrap();
        let b = evaluate(&netlist, &s, &config).unwrap();
        assert_eq!(a, b);
    }
}
