//! Scheme-as-plugin: the [`SchemeRuntime`] trait and the compile-time
//! scheme registry.
//!
//! Historically the protection-scheme set was a closed `enum` whose
//! behaviour was re-implemented in five parallel `match` sites (row-layout
//! geometry, the scalar executor, the bit-sliced executor, the analytic
//! system model, and name parsing). A [`SchemeRuntime`] owns *all* of that
//! for one scheme, so the engine, the sweep planner, the service protocol
//! and the CLIs dispatch through one trait object instead — and adding a
//! scheme means writing one `impl SchemeRuntime` file and registering it in
//! [`registry`], with **zero** edits to any dispatch code.
//!
//! The registry is a compile-time list of `&'static dyn SchemeRuntime`
//! (no global mutable state, no registration order hazards); a
//! [`ProtectionScheme`](crate::config::ProtectionScheme) value is a copyable
//! handle to one entry. The built-in schemes live under
//! [`crate::schemes`]; [`crate::schemes::parity_detect`] is the template to
//! copy when adding a new one.

use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::RowSchedule;
use nvpim_sim::array::PimArray;
use nvpim_sim::periphery::PeripheryModel;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::CheckerCostModel;
use crate::config::DesignConfig;
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::CostBreakdown;

/// Everything a scheme declares about itself, evaluated against one design
/// point. Surfaced by `nvpim-cli schemes` / `--list-schemes` and asserted
/// by the registry-completeness tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeCapabilities {
    /// Whether the scheme implements the lane-batched (bit-sliced) run path.
    /// A sliceable scheme's operation sequence must be a pure function of
    /// the schedule (never of the data), so 64 trials can share one program.
    pub sliceable: bool,
    /// Whether the scheme only detects errors (it never writes corrections
    /// back; detections are accounted as would-be retries).
    pub detect_only: bool,
    /// In-memory parity bits the scheme maintains per check group.
    pub parity_bits: usize,
    /// Columns the scheme reserves per row for metadata under this design.
    pub metadata_columns: usize,
    /// Cells each computed value occupies (3 for triple-redundant TRiM).
    pub cells_per_value: usize,
    /// Whether a zero-fault trial of the scheme is analytically settleable:
    /// the clean-run operation sequence, check count and metadata traffic
    /// are a pure function of the schedule (never of the inputs), so one
    /// captured clean trial stands for every zero-fault trial of a point.
    /// This legalizes the engine's analytic fast path and the stratified
    /// estimator's zero-fault stratum.
    pub analytic_clean: bool,
    /// Whether the scheme recovers from detections by re-evaluating the
    /// affected logic level in periphery logic and writing the results back
    /// (detect-and-recompute), rather than only counting retries or
    /// decoding a code.
    pub recompute: bool,
    /// Whether the scheme's write-back path accounts for permanent
    /// stuck-at defects: verified writes that a broken cell pins to the
    /// wrong value are surfaced as uncorrectable instead of silently
    /// trusted.
    pub stuck_at_aware: bool,
}

/// Per-technology cost parameters handed to
/// [`SchemeRuntime::metadata_costs`] — the slice of the §V analytic model
/// that is independent of the protection scheme.
#[derive(Debug, Clone)]
pub struct CostEnv {
    /// Switching delay of one in-array gate operation (ns).
    pub t_gate: f64,
    /// Energy of one NOR/copy operation (fJ).
    pub nor_e: f64,
    /// Energy of one THR operation (fJ).
    pub thr_e: f64,
    /// Energy of one cell write (fJ).
    pub write_e: f64,
    /// Whether the design uses multi-output gates.
    pub multi_output: bool,
    /// Array-interface (read/write port) model for Checker communication.
    pub periphery: PeripheryModel,
}

/// One protection scheme's complete behaviour: identity, row geometry,
/// capabilities, analytic cost hooks and both Monte Carlo run paths.
///
/// Implementations are zero-sized statics registered in [`registry`];
/// everything is dispatched through `&'static dyn SchemeRuntime`, so no
/// engine code ever matches on a scheme again. See `docs/api.md` for the
/// add-a-scheme walkthrough.
pub trait SchemeRuntime: std::fmt::Debug + Sync {
    // ------------------------------------------------------------------
    // Identity
    // ------------------------------------------------------------------

    /// Stable serialized name — what campaign-plan JSON carries (e.g.
    /// `"Ecim"`). Changing it changes plan content digests; never reuse a
    /// retired name.
    fn wire_name(&self) -> &'static str;

    /// Human-readable display label (e.g. `"ECiM"`), used in report labels
    /// and tables.
    fn display_name(&self) -> &'static str;

    /// Additional accepted spellings for parsing (the wire and display
    /// names always parse).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    // ------------------------------------------------------------------
    // Row geometry
    // ------------------------------------------------------------------

    /// Columns reserved in every row for the scheme's metadata under
    /// `config` (running parity cells, working cells, redundant copies).
    fn metadata_columns(&self, config: &DesignConfig) -> usize;

    /// Cells each computed value occupies in the scratch region (3 for
    /// triple-redundant computation, 1 otherwise).
    fn cells_per_value(&self) -> usize {
        1
    }

    // ------------------------------------------------------------------
    // Capabilities
    // ------------------------------------------------------------------

    /// Whether this scheme implements [`Self::run_sliced`]. Declaring
    /// `true` without implementing it fails the registry-completeness
    /// suite; declaring `false` simply routes every trial through the
    /// scalar path.
    fn sliceable(&self) -> bool;

    /// Whether the scheme is detection-only (no correction write-backs).
    fn detect_only(&self) -> bool {
        false
    }

    /// Whether a fault-free trial of this scheme is analytically
    /// settleable: its clean-run operation sequence, check count and
    /// metadata traffic must be a pure function of the schedule — never of
    /// the trial's input data — so a single captured clean trial stands for
    /// every zero-fault trial of the same design point. All registered
    /// schemes satisfy this (their run paths are schedule-driven on GF(2));
    /// a future scheme whose zero-fault op count branches on data must
    /// override this to `false`, which routes its points through plain
    /// exhaustive Monte Carlo. The engine additionally cross-checks the
    /// claim at preparation time by capturing the clean profile twice with
    /// different inputs.
    fn analytic_clean(&self) -> bool {
        true
    }

    /// Whether the scheme recovers from detections by bounded software
    /// recompute of the affected level with verified write-back.
    fn recompute(&self) -> bool {
        false
    }

    /// Whether the scheme's write-back path detects stuck-at-pinned
    /// residual errors (see [`SchemeCapabilities::stuck_at_aware`]).
    fn stuck_at_aware(&self) -> bool {
        false
    }

    /// In-memory parity bits maintained per check group under `config`.
    fn parity_bits(&self, config: &DesignConfig) -> usize {
        let _ = config;
        0
    }

    /// The scheme's capability sheet for one design point (assembled from
    /// the individual declarations; override only to annotate more).
    fn capabilities(&self, config: &DesignConfig) -> SchemeCapabilities {
        SchemeCapabilities {
            sliceable: self.sliceable(),
            detect_only: self.detect_only(),
            parity_bits: self.parity_bits(config),
            metadata_columns: self.metadata_columns(config),
            cells_per_value: self.cells_per_value(),
            analytic_clean: self.analytic_clean(),
            recompute: self.recompute(),
            stuck_at_aware: self.stuck_at_aware(),
        }
    }

    // ------------------------------------------------------------------
    // Analytic model hooks (§V)
    // ------------------------------------------------------------------

    /// Cost model of the external Checker block this scheme pairs with.
    fn checker_cost(&self, config: &DesignConfig) -> CheckerCostModel;

    /// Adds the scheme's metadata and Checker terms to an execution-cost
    /// breakdown whose *compute* terms (`compute_time_ns`,
    /// `compute_energy_fj`) have already been accumulated, and returns the
    /// Checker traffic in bits. Implementations must iterate
    /// `schedule.level_profile` in order and skip levels with no outputs,
    /// so estimates stay bit-reproducible.
    fn metadata_costs(
        &self,
        schedule: &RowSchedule,
        config: &DesignConfig,
        env: &CostEnv,
        breakdown: &mut CostBreakdown,
    ) -> u64;

    // ------------------------------------------------------------------
    // Monte Carlo run paths
    // ------------------------------------------------------------------

    /// Runs one trial of `schedule` on the scalar array, maintaining the
    /// scheme's metadata in memory and checking at logic-level boundaries.
    /// Invoked by [`ProtectedExecutor::run_with_scratch`] after validation;
    /// implementations drive the executor's public helpers
    /// (`materialize_inputs`, `execute_plain_gate`, `read_outputs`).
    #[allow(clippy::too_many_arguments)]
    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError>;

    /// Runs up to 64 trials of `schedule` at once on the bit-sliced array,
    /// mirroring [`Self::run_scalar`] lane for lane (same gate order, same
    /// per-op fault-decision order). Only called when [`Self::sliceable`]
    /// returns `true`; the default panics so a scheme cannot silently claim
    /// a capability it does not implement.
    #[allow(clippy::too_many_arguments)]
    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        let _ = (exec, netlist, schedule, array, row, inputs, scratch);
        panic!(
            "scheme `{}` declares no sliced run path (sliceable() is false)",
            self.wire_name()
        );
    }
}

/// The compile-time scheme registry, in stable wire order. `FromStr`,
/// serialization, the CLI listings and the proptest generators all iterate
/// this slice — registering a scheme here is the *only* step besides the
/// `impl SchemeRuntime` itself.
pub fn registry() -> &'static [&'static dyn SchemeRuntime] {
    static REGISTRY: [&'static dyn SchemeRuntime; 5] = [
        &crate::schemes::unprotected::UnprotectedScheme,
        &crate::schemes::ecim::EcimScheme,
        &crate::schemes::trim::TrimScheme,
        &crate::schemes::parity_detect::ParityDetectScheme,
        &crate::schemes::detect_recompute::DetectRecomputeScheme,
    ];
    &REGISTRY
}

/// Looks a scheme up by wire name, display name or alias.
pub fn lookup(name: &str) -> Option<&'static dyn SchemeRuntime> {
    registry()
        .iter()
        .copied()
        .find(|s| s.wire_name() == name || s.display_name() == name || s.aliases().contains(&name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for scheme in registry() {
            assert!(
                seen.insert(scheme.wire_name()),
                "duplicate wire name {}",
                scheme.wire_name()
            );
            assert_eq!(
                lookup(scheme.wire_name()).unwrap().wire_name(),
                scheme.wire_name()
            );
            assert_eq!(
                lookup(scheme.display_name()).unwrap().wire_name(),
                scheme.wire_name()
            );
            for alias in scheme.aliases() {
                assert_eq!(lookup(alias).unwrap().wire_name(), scheme.wire_name());
            }
        }
        assert!(lookup("NoSuchScheme").is_none());
    }
}
