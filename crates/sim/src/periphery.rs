//! Peripheral-circuitry cost model (the NVSim substitute).
//!
//! The paper uses NVSim to estimate the overhead of sense amplifiers, column
//! decoders, predecoders, charge/precharge circuitry and control-line
//! drivers. Those tools are not available offline, so this module provides
//! an analytical model with per-event costs in the same regime as NVSim's
//! 45 nm outputs for a 256×256 nonvolatile subarray. Only *relative*
//! ECiM / TRiM / baseline comparisons depend on these values, and they enter
//! all three designs identically.

use serde::{Deserialize, Serialize};

use crate::technology::Technology;

/// Per-event peripheral costs of a PiM (sub)array interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeripheryModel {
    /// Sense-amplifier energy per read bit (fJ).
    pub sense_energy_per_bit_fj: f64,
    /// Write-driver energy per written bit, excluding the cell switching
    /// energy itself (fJ).
    pub write_driver_energy_per_bit_fj: f64,
    /// Row/column decode + predecode energy per interface transaction (fJ).
    pub decode_energy_per_access_fj: f64,
    /// Control-line (WL/BSL) driver energy per in-array gate operation (fJ).
    pub driver_energy_per_gate_fj: f64,
    /// Latency of one interface read transaction (ns).
    pub read_latency_ns: f64,
    /// Latency of one interface write transaction (ns).
    pub write_latency_ns: f64,
    /// Width of the array interface in bits (cells transferred per
    /// transaction). The paper sizes codewords to match this (Hamming(255,247)
    /// against 256-bit rows).
    pub interface_width_bits: usize,
}

impl PeripheryModel {
    /// Default peripheral model for a 256×256 subarray of the given
    /// technology. MRAM sensing needs larger sense margins (higher energy)
    /// than ReRAM due to the smaller resistance ratio.
    pub fn for_technology(technology: Technology) -> Self {
        let (sense, read_lat, write_lat) = match technology {
            Technology::SttMram => (1.2, 2.0, 2.0),
            Technology::SotSheMram => (1.0, 2.0, 1.5),
            Technology::ReRam => (0.8, 2.5, 3.0),
            // The 1S1R crossbar senses through its selector, adding a small
            // series drop over the 1T1R ReRAM periphery.
            Technology::ReramCrossbar => (0.9, 2.7, 3.2),
        };
        Self {
            sense_energy_per_bit_fj: sense,
            write_driver_energy_per_bit_fj: 0.4,
            decode_energy_per_access_fj: 6.0,
            driver_energy_per_gate_fj: 0.6,
            read_latency_ns: read_lat,
            write_latency_ns: write_lat,
            interface_width_bits: 256,
        }
    }

    /// Energy (fJ) of reading `bits` cells through the interface.
    pub fn read_energy(&self, bits: usize) -> f64 {
        let transactions = bits.div_ceil(self.interface_width_bits).max(1);
        self.sense_energy_per_bit_fj * bits as f64
            + self.decode_energy_per_access_fj * transactions as f64
    }

    /// Energy (fJ) of writing `bits` cells through the interface
    /// (driver + decode; cell switching energy is separate).
    pub fn write_energy(&self, bits: usize) -> f64 {
        let transactions = bits.div_ceil(self.interface_width_bits).max(1);
        self.write_driver_energy_per_bit_fj * bits as f64
            + self.decode_energy_per_access_fj * transactions as f64
    }

    /// Latency (ns) of reading `bits` cells (one transaction per
    /// `interface_width_bits`).
    pub fn read_latency(&self, bits: usize) -> f64 {
        bits.div_ceil(self.interface_width_bits).max(1) as f64 * self.read_latency_ns
    }

    /// Latency (ns) of writing `bits` cells.
    pub fn write_latency(&self, bits: usize) -> f64 {
        bits.div_ceil(self.interface_width_bits).max(1) as f64 * self.write_latency_ns
    }

    /// Control-line driver energy for `gates` in-array gate operations.
    pub fn gate_drive_energy(&self, gates: u64) -> f64 {
        self.driver_energy_per_gate_fj * gates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_round_up() {
        let p = PeripheryModel::for_technology(Technology::SttMram);
        assert_eq!(p.read_latency(1), p.read_latency_ns);
        assert_eq!(p.read_latency(256), p.read_latency_ns);
        assert_eq!(p.read_latency(257), 2.0 * p.read_latency_ns);
        assert_eq!(p.write_latency(512), 2.0 * p.write_latency_ns);
    }

    #[test]
    fn energy_scales_with_bits() {
        let p = PeripheryModel::for_technology(Technology::ReRam);
        assert!(p.read_energy(256) > p.read_energy(8));
        assert!(p.write_energy(256) > p.write_energy(8));
        assert!(p.gate_drive_energy(100) > p.gate_drive_energy(10));
    }

    #[test]
    fn zero_bit_access_still_costs_a_transaction() {
        let p = PeripheryModel::for_technology(Technology::SotSheMram);
        assert!(p.read_energy(0) > 0.0);
        assert!(p.read_latency(0) > 0.0);
    }

    #[test]
    fn all_technologies_have_models() {
        for t in Technology::ALL {
            let p = PeripheryModel::for_technology(t);
            assert!(p.sense_energy_per_bit_fj > 0.0);
            assert_eq!(p.interface_width_bits, 256);
        }
    }
}
