//! Parallel Monte Carlo fault-injection campaign.
//!
//! Expands a `SweepPlan` spanning 2 technologies × 3 protection configs ×
//! 3 gate-error rates into 1008 independent trials, executes them in
//! parallel (per-trial ChaCha8 seeds derived from the campaign seed), and
//! emits the deterministic `SweepReport` JSON on stdout — byte-identical
//! for any `RAYON_NUM_THREADS` setting.
//!
//! Run with: `cargo run --release --example fault_sweep`
//! Compare:  `RAYON_NUM_THREADS=1 cargo run --release --example fault_sweep`

use nvpim::sim::technology::Technology;
use nvpim::sweep::{
    run_campaign, CampaignKind, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = SweepPlan {
        workloads: vec![SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        }],
        technologies: vec![Technology::SttMram, Technology::ReRam],
        protections: ProtectionConfig::paper_trio(),
        gate_error_rates: vec![1e-4, 3e-4, 1e-3],
        seeds_per_point: 56,
        campaign_seed: 0x0f1e_2d3c_4b5a_6978,
        estimator: EstimatorMode::Exact,
        kind: CampaignKind::Error,
        stuck_at_rate: 0.0,
    };
    eprintln!(
        "campaign: {} points x {} seeds = {} trials",
        plan.point_count(),
        plan.seeds_per_point,
        plan.trial_count()
    );
    assert!(
        plan.trial_count() >= 1000,
        "example must run >= 1000 trials"
    );

    let report = run_campaign(&plan)?;

    // Human-readable summary on stderr (stdout carries only the JSON, so
    // the emitted report can be diffed / piped directly).
    eprintln!(
        "{:<10} {:<9} {:<15} {:>9} {:>7} {:>9} {:>9} {:>7}",
        "workload", "tech", "protection", "rate", "faults", "detected", "failed", "silent"
    );
    for p in &report.points {
        eprintln!(
            "{:<10} {:<9} {:<15} {:>9.0e} {:>7} {:>9} {:>9} {:>7}",
            p.workload,
            p.technology,
            p.protection,
            p.gate_error_rate,
            p.faults_injected,
            p.errors_detected,
            p.failed_trials,
            p.silent_failures,
        );
    }
    eprintln!(
        "total: {} trials, {} failed; {} schedules compiled for {} points",
        report.total_trials,
        report.total_failed_trials,
        report.schedules_compiled,
        report.points.len()
    );

    println!("{}", report.to_json());
    Ok(())
}
