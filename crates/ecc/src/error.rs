//! Error types for the ECC substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by code constructors and decoders in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// The requested code parameters are invalid or unsupported.
    InvalidParameters(String),
    /// The decoder found more errors than the code can correct.
    Uncorrectable {
        /// Number of errors the decoder believes are present.
        errors_found: usize,
        /// Maximum number of correctable errors for the code.
        capability: usize,
    },
    /// A redundancy vote could not reach a majority (e.g. all copies differ).
    NoMajority,
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::InvalidParameters(msg) => write!(f, "invalid code parameters: {msg}"),
            EccError::Uncorrectable {
                errors_found,
                capability,
            } => write!(
                f,
                "uncorrectable error pattern: found {errors_found} errors, capability is {capability}"
            ),
            EccError::NoMajority => write!(f, "no majority among redundant copies"),
        }
    }
}

impl Error for EccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = EccError::InvalidParameters("n too small".into());
        assert!(e.to_string().contains("n too small"));
        let e = EccError::Uncorrectable {
            errors_found: 3,
            capability: 1,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("1"));
        assert!(!EccError::NoMajority.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EccError>();
    }
}
