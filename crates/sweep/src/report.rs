//! Campaign results: per-trial outcomes, per-point aggregates and the
//! serializable [`SweepReport`].

use serde::{Serialize, Value};

use crate::engine::PointContext;
use crate::plan::{CampaignKind, EstimatorMode, SweepPlan};

/// Raw counters from one Monte Carlo trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Faults the injector actually fired during the trial.
    pub faults_injected: u64,
    /// Checker invocations.
    pub checks: u64,
    /// Checks that detected an error.
    pub errors_detected: u64,
    /// Data bits corrected and written back.
    pub corrections_written_back: u64,
    /// Checks whose error pattern exceeded the correction capability.
    pub uncorrectable: u64,
    /// Final output bits differing from the fault-free reference.
    pub wrong_output_bits: u64,
    /// Execution error, if the trial failed to run at all.
    pub exec_error: Option<String>,
    /// Accuracy-campaign verdict: whether the trial's faulty top-1
    /// prediction matched the clean model's prediction for the same image.
    /// `None` for error-campaign trials (and omitted from their serialized
    /// form, so error-campaign journal and shard-wire bytes are unchanged).
    pub correct: Option<bool>,
}

// Hand-rolled so the `correct` key is *omitted* when `None`: error-campaign
// trial bytes (journal checkpoints, shard wire format) stay byte-identical
// to versions that predate accuracy campaigns. Field order must mirror
// declaration order exactly (what `derive(Serialize)` emitted before this
// field existed).
impl Serialize for TrialOutcome {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "faults_injected".to_string(),
                self.faults_injected.to_json(),
            ),
            ("checks".to_string(), self.checks.to_json()),
            (
                "errors_detected".to_string(),
                self.errors_detected.to_json(),
            ),
            (
                "corrections_written_back".to_string(),
                self.corrections_written_back.to_json(),
            ),
            ("uncorrectable".to_string(), self.uncorrectable.to_json()),
            (
                "wrong_output_bits".to_string(),
                self.wrong_output_bits.to_json(),
            ),
            ("exec_error".to_string(), self.exec_error.to_json()),
        ];
        if let Some(correct) = self.correct {
            fields.push(("correct".to_string(), correct.to_json()));
        }
        Value::Object(fields)
    }
}

impl TrialOutcome {
    /// Decodes one outcome from its serialized JSON shape (the inverse of
    /// the derived `Serialize`). Used by the service's write-ahead journal
    /// to restore chunk checkpoints across daemon restarts.
    ///
    /// # Errors
    ///
    /// A human-readable description naming the missing or mistyped field.
    pub fn from_json_value(value: &Value) -> Result<Self, String> {
        let num = |key: &str| {
            value.get(key).and_then(Value::as_u64).ok_or_else(|| {
                format!("trial outcome field `{key}` must be a non-negative integer")
            })
        };
        let exec_error = match value.get("exec_error") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("trial outcome field `exec_error` must be a string or null")?
                    .to_string(),
            ),
        };
        // Absent in every error-campaign outcome (and in checkpoints written
        // before accuracy campaigns existed) — both decode to `None`.
        let correct = match value.get("correct") {
            None | Some(Value::Null) => None,
            Some(Value::Bool(b)) => Some(*b),
            Some(_) => {
                return Err("trial outcome field `correct` must be a boolean or null".to_string())
            }
        };
        Ok(TrialOutcome {
            faults_injected: num("faults_injected")?,
            checks: num("checks")?,
            errors_detected: num("errors_detected")?,
            corrections_written_back: num("corrections_written_back")?,
            uncorrectable: num("uncorrectable")?,
            wrong_output_bits: num("wrong_output_bits")?,
            exec_error,
            correct,
        })
    }

    /// Whether the final output was wrong (a failed trial).
    pub fn failed(&self) -> bool {
        self.wrong_output_bits > 0
    }

    /// A *silent* failure: wrong output with no uncorrectable flag — the
    /// scheme believed the computation was fine (or corrected), yet the
    /// result is corrupt. This is the error class SEP exists to eliminate.
    pub fn silent_failure(&self) -> bool {
        self.failed() && self.uncorrectable == 0
    }
}

/// Rare-event statistics for one point, present only in
/// [`EstimatorMode::Stratified`] campaigns (exact-mode report bytes are
/// unchanged).
///
/// The stratified estimator splits each trial's probability space into two
/// strata: *zero faults in the decision window* (settled analytically — the
/// captured clean profile proves the output is correct) and *at least one
/// fault* (probability [`fault_probability`], simulated conditionally). With
/// `q̂` the conditional failure fraction over [`conditional_trials`], the
/// unconditional rate is exactly `fault_probability · q̂` — unbiased because
/// the zero-fault stratum contributes zero failures by construction.
/// Confidence intervals are 95% Wilson score intervals on `q̂`, scaled by
/// the same factor.
///
/// [`fault_probability`]: Self::fault_probability
/// [`conditional_trials`]: Self::conditional_trials
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EstimatorSummary {
    /// Whether trials were actually conditioned on the fault stratum.
    /// `false` means the point fell back to plain Monte Carlo (no clean
    /// profile, zero decision window, or a degenerate rate) and the
    /// intervals below describe the unconditioned estimate
    /// (`fault_probability` is 1).
    pub stratified: bool,
    /// Gate-output fault decisions one trial makes (the decision window).
    pub decisions_per_trial: u64,
    /// Probability that at least one fault lands in the decision window
    /// (`1 − (1−p)^decisions`); the reweighting factor `P1`.
    pub fault_probability: f64,
    /// Trials simulated in the at-least-one-fault stratum.
    pub conditional_trials: u64,
    /// Plain Monte Carlo trials that would match this estimate's variance
    /// (`conditional_trials / fault_probability`).
    pub effective_trials: f64,
    /// Unbiased unconditional output-error-rate estimate.
    pub output_error_rate: f64,
    /// Lower 95% Wilson bound on the output error rate.
    pub output_error_ci_low: f64,
    /// Upper 95% Wilson bound on the output error rate.
    pub output_error_ci_high: f64,
    /// Unbiased unconditional silent-failure-rate estimate.
    pub silent_failure_rate: f64,
    /// Lower 95% Wilson bound on the silent failure rate.
    pub silent_failure_ci_low: f64,
    /// Upper 95% Wilson bound on the silent failure rate.
    pub silent_failure_ci_high: f64,
}

/// 95% Wilson score interval for `successes / n`, clamped to `[0, 1]`.
/// Returns `(0.0, 1.0)` when `n == 0` (no evidence, full uncertainty).
/// Shared by the stratified estimator's rate intervals and the accuracy
/// campaign's fidelity interval.
pub(crate) fn wilson_interval(successes: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    const Z: f64 = 1.96;
    let n = n as f64;
    let q = successes as f64 / n;
    let z2 = Z * Z;
    let denom = 1.0 + z2 / n;
    let center = (q + z2 / (2.0 * n)) / denom;
    let half = Z * (q * (1.0 - q) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

impl EstimatorSummary {
    /// Builds the summary from the conditional stratum's counters.
    /// `fault_probability` must be the analytic `P1` of the decision window
    /// when `stratified`, and `1.0` for the plain-Monte-Carlo fallback.
    pub(crate) fn from_counts(
        stratified: bool,
        decisions_per_trial: u64,
        fault_probability: f64,
        conditional_trials: u64,
        failed: u64,
        silent: u64,
    ) -> Self {
        let p1 = fault_probability;
        let n = conditional_trials;
        let (fail_lo, fail_hi) = wilson_interval(failed, n);
        let (silent_lo, silent_hi) = wilson_interval(silent, n);
        let rate = |k: u64| {
            if n == 0 {
                0.0
            } else {
                p1 * k as f64 / n as f64
            }
        };
        EstimatorSummary {
            stratified,
            decisions_per_trial,
            fault_probability: p1,
            conditional_trials: n,
            effective_trials: if p1 > 0.0 { n as f64 / p1 } else { n as f64 },
            output_error_rate: rate(failed),
            output_error_ci_low: p1 * fail_lo,
            output_error_ci_high: p1 * fail_hi,
            silent_failure_rate: rate(silent),
            silent_failure_ci_low: p1 * silent_lo,
            silent_failure_ci_high: p1 * silent_hi,
        }
    }
}

/// Task-accuracy statistics for one point, present only in
/// [`CampaignKind::Accuracy`](crate::plan::CampaignKind::Accuracy)
/// campaigns (error-campaign report bytes are unchanged).
///
/// Accuracy is measured as *top-1 fidelity*: the fraction of evaluated
/// trials whose faulty prediction matched the clean model's prediction for
/// the same image. The clean model scores 1.0 by construction, so
/// [`top1_delta`](Self::top1_delta) is the accuracy lost to faults. The
/// synthetic dataset's labels are random, so the model's agreement with
/// them ([`clean_label_accuracy`](Self::clean_label_accuracy), the cached
/// once-per-campaign clean-run baseline) contextualizes the task rather
/// than measuring learning.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AccuracySummary {
    /// Trials whose faulty prediction matched the clean prediction.
    pub correct_trials: u64,
    /// Trials that executed and produced a prediction (exec-errored trials
    /// are excluded, mirroring `output_error_rate`'s denominator).
    pub evaluated_trials: u64,
    /// Top-1 fidelity `correct_trials / evaluated_trials` (0.0 when nothing
    /// executed — check `exec_errors`).
    pub accuracy: f64,
    /// Lower 95% Wilson bound on the fidelity.
    pub accuracy_ci_low: f64,
    /// Upper 95% Wilson bound on the fidelity.
    pub accuracy_ci_high: f64,
    /// Accuracy delta against the clean baseline (fidelity − 1.0, ≤ 0).
    pub top1_delta: f64,
    /// The clean model's agreement with the synthetic labels — the
    /// once-per-campaign cached clean-run baseline constant.
    pub clean_label_accuracy: f64,
}

impl AccuracySummary {
    /// Builds the summary from the point's correct/evaluated counts.
    pub(crate) fn from_counts(
        correct_trials: u64,
        evaluated_trials: u64,
        clean_label_accuracy: f64,
    ) -> Self {
        let accuracy = if evaluated_trials == 0 {
            0.0
        } else {
            correct_trials as f64 / evaluated_trials as f64
        };
        let (ci_low, ci_high) = wilson_interval(correct_trials, evaluated_trials);
        AccuracySummary {
            correct_trials,
            evaluated_trials,
            accuracy,
            accuracy_ci_low: ci_low,
            accuracy_ci_high: ci_high,
            top1_delta: accuracy - 1.0,
            clean_label_accuracy,
        }
    }
}

/// Aggregated results of one campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Workload name.
    pub workload: String,
    /// Technology label.
    pub technology: String,
    /// Protection label (e.g. `"ECiM/m-o"`).
    pub protection: String,
    /// Gate-output bit-flip probability of this point.
    pub gate_error_rate: f64,
    /// Trials run.
    pub trials: u64,
    /// Total faults injected across the trials.
    pub faults_injected: u64,
    /// Total Checker invocations.
    pub checks: u64,
    /// Checks that detected an error.
    pub errors_detected: u64,
    /// Corrections written back to the array.
    pub corrections_written_back: u64,
    /// Checks flagged uncorrectable.
    pub uncorrectable_checks: u64,
    /// Trials whose final output was wrong.
    pub failed_trials: u64,
    /// Failed trials that raised no uncorrectable flag (silent errors).
    pub silent_failures: u64,
    /// Total wrong output bits across all trials.
    pub wrong_output_bits: u64,
    /// `failed_trials / (trials − exec_errors)` — the denominator counts
    /// only trials that actually executed, so a broken point (all trials
    /// erroring) cannot masquerade as a perfect 0.0 error rate. `NaN`-free:
    /// reported as 0.0 when nothing executed (check [`Self::exec_errors`]).
    pub output_error_rate: f64,
    /// Trials that could not execute at all. Always inspect alongside
    /// [`Self::output_error_rate`]: a nonzero value means the point's
    /// statistics rest on fewer trials than planned.
    pub exec_errors: u64,
    /// Analytic per-row execution time estimate (ns) from the system model.
    pub est_time_ns: f64,
    /// Analytic per-row energy estimate (fJ) from the system model.
    pub est_energy_fj: f64,
    /// Rare-event estimator statistics — `Some` only in
    /// [`EstimatorMode::Stratified`] campaigns. In stratified mode the raw
    /// counters above describe the *conditional* stratum (every simulated
    /// trial had ≥ 1 fault forced into its window); the unbiased
    /// unconditional rates live here.
    pub estimator: Option<EstimatorSummary>,
    /// Task-accuracy statistics — `Some` only in accuracy campaigns, where
    /// every trial classifies one image and the counters above additionally
    /// describe the per-neuron row programs.
    pub accuracy: Option<AccuracySummary>,
}

// Hand-rolled so the `estimator` key is *omitted* (not `null`) when absent:
// exact-mode reports stay byte-identical to schema version 1. Field order
// must mirror declaration order exactly (what `derive(Serialize)` emitted
// before this field existed).
impl Serialize for PointSummary {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("workload".to_string(), self.workload.to_json()),
            ("technology".to_string(), self.technology.to_json()),
            ("protection".to_string(), self.protection.to_json()),
            (
                "gate_error_rate".to_string(),
                self.gate_error_rate.to_json(),
            ),
            ("trials".to_string(), self.trials.to_json()),
            (
                "faults_injected".to_string(),
                self.faults_injected.to_json(),
            ),
            ("checks".to_string(), self.checks.to_json()),
            (
                "errors_detected".to_string(),
                self.errors_detected.to_json(),
            ),
            (
                "corrections_written_back".to_string(),
                self.corrections_written_back.to_json(),
            ),
            (
                "uncorrectable_checks".to_string(),
                self.uncorrectable_checks.to_json(),
            ),
            ("failed_trials".to_string(), self.failed_trials.to_json()),
            (
                "silent_failures".to_string(),
                self.silent_failures.to_json(),
            ),
            (
                "wrong_output_bits".to_string(),
                self.wrong_output_bits.to_json(),
            ),
            (
                "output_error_rate".to_string(),
                self.output_error_rate.to_json(),
            ),
            ("exec_errors".to_string(), self.exec_errors.to_json()),
            ("est_time_ns".to_string(), self.est_time_ns.to_json()),
            ("est_energy_fj".to_string(), self.est_energy_fj.to_json()),
        ];
        if let Some(est) = &self.estimator {
            fields.push(("estimator".to_string(), est.to_json()));
        }
        if let Some(acc) = &self.accuracy {
            fields.push(("accuracy".to_string(), acc.to_json()));
        }
        Value::Object(fields)
    }
}

impl PointSummary {
    /// Folds a point's trial outcomes (in trial order) into a summary.
    pub(crate) fn aggregate(ctx: &PointContext, outcomes: &[TrialOutcome]) -> Self {
        let trials = outcomes.len() as u64;
        let mut s = PointSummary {
            // Labels were formatted exactly once at preparation time (from
            // the scheme runtime's `&'static str` name); report assembly
            // only clones the cached strings.
            workload: ctx.workload_name.clone(),
            technology: ctx.technology_label.clone(),
            protection: ctx.protection_label.clone(),
            gate_error_rate: ctx.gate_error_rate,
            trials,
            faults_injected: 0,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable_checks: 0,
            failed_trials: 0,
            silent_failures: 0,
            wrong_output_bits: 0,
            output_error_rate: 0.0,
            exec_errors: 0,
            est_time_ns: ctx.est_time_ns,
            est_energy_fj: ctx.est_energy_fj,
            estimator: None,
            accuracy: None,
        };
        let mut correct_trials = 0u64;
        let mut evaluated_trials = 0u64;
        for o in outcomes {
            s.faults_injected += o.faults_injected;
            s.checks += o.checks;
            s.errors_detected += o.errors_detected;
            s.corrections_written_back += o.corrections_written_back;
            s.uncorrectable_checks += o.uncorrectable;
            if o.exec_error.is_some() {
                // An exec-errored trial is excluded from `output_error_rate`'s
                // denominator, so its half-executed output must not feed the
                // numerator's failure counters either — otherwise one broken
                // trial inflates a rate whose denominator disowned it.
                s.exec_errors += 1;
                continue;
            }
            s.wrong_output_bits += o.wrong_output_bits;
            if o.failed() {
                s.failed_trials += 1;
            }
            if o.silent_failure() {
                s.silent_failures += 1;
            }
            if let Some(correct) = o.correct {
                evaluated_trials += 1;
                if correct {
                    correct_trials += 1;
                }
            }
        }
        let executed = trials - s.exec_errors;
        if executed > 0 {
            s.output_error_rate = s.failed_trials as f64 / executed as f64;
        }
        if let Some(accuracy) = ctx.accuracy_context() {
            s.accuracy = Some(AccuracySummary::from_counts(
                correct_trials,
                evaluated_trials,
                accuracy.clean_label_accuracy(),
            ));
        }
        s
    }
}

/// The serializable result of a whole campaign.
///
/// Field order is declaration order and every value derives solely from the
/// plan and the trial outcomes (never from wall-clock time or thread
/// scheduling), so `to_json()` is byte-identical across runs and across
/// `RAYON_NUM_THREADS` settings.
///
/// `schema_version` is 1 for exact-mode error campaigns (bytes unchanged
/// since that schema shipped), 2 for stratified-estimator campaigns (points
/// carry an extra `estimator` object), and 3 for accuracy campaigns (points
/// carry an extra `accuracy` object and trials a `correct` verdict).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// Report schema version.
    pub schema_version: u32,
    /// The campaign's root seed.
    pub campaign_seed: u64,
    /// Trials per point.
    pub seeds_per_point: u64,
    /// Total trials run.
    pub total_trials: u64,
    /// Total failed trials across all points.
    pub total_failed_trials: u64,
    /// Total trials that could not execute, across all points (nonzero
    /// means some points' statistics rest on fewer trials than planned).
    pub total_exec_errors: u64,
    /// Distinct schedules the cache compiled (vs `points.len()` had every
    /// trial recompiled its own mapping).
    pub schedules_compiled: usize,
    /// Per-point aggregates, in plan (cartesian) order.
    pub points: Vec<PointSummary>,
}

impl SweepReport {
    pub(crate) fn new(
        plan: &SweepPlan,
        points: Vec<PointSummary>,
        schedules_compiled: usize,
    ) -> Self {
        let total_trials = points.iter().map(|p| p.trials).sum();
        let total_failed_trials = points.iter().map(|p| p.failed_trials).sum();
        let total_exec_errors = points.iter().map(|p| p.exec_errors).sum();
        SweepReport {
            // Accuracy campaigns reject the stratified estimator at plan
            // validation, so the versions never contend.
            schema_version: match (plan.kind, plan.estimator) {
                (CampaignKind::Accuracy, _) => 3,
                (_, EstimatorMode::Exact) => 1,
                (_, EstimatorMode::Stratified) => 2,
            },
            campaign_seed: plan.campaign_seed,
            seeds_per_point: plan.seeds_per_point,
            total_trials,
            total_failed_trials,
            total_exec_errors,
            schedules_compiled,
            points,
        }
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_failure_classification() {
        let base = TrialOutcome {
            faults_injected: 2,
            checks: 10,
            errors_detected: 1,
            corrections_written_back: 1,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: None,
            correct: None,
        };
        assert!(!base.failed());
        let silent = TrialOutcome {
            wrong_output_bits: 3,
            ..base.clone()
        };
        assert!(silent.failed() && silent.silent_failure());
        let loud = TrialOutcome {
            wrong_output_bits: 3,
            uncorrectable: 1,
            ..base
        };
        assert!(loud.failed() && !loud.silent_failure());
    }

    #[test]
    fn error_trial_bytes_omit_the_correct_key_and_roundtrip() {
        let error_trial = TrialOutcome {
            faults_injected: 1,
            checks: 4,
            errors_detected: 1,
            corrections_written_back: 1,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: None,
            correct: None,
        };
        let encoded = serde_json::to_string(&error_trial).unwrap();
        // Journal/shard wire bytes of error campaigns are unchanged by the
        // accuracy field.
        assert!(!encoded.contains("\"correct\""));
        let value = serde_json::from_str(&encoded).unwrap();
        assert_eq!(TrialOutcome::from_json_value(&value).unwrap(), error_trial);

        let accuracy_trial = TrialOutcome {
            correct: Some(true),
            ..error_trial.clone()
        };
        let encoded = serde_json::to_string(&accuracy_trial).unwrap();
        assert!(encoded.contains("\"correct\":true"));
        let value = serde_json::from_str(&encoded).unwrap();
        assert_eq!(
            TrialOutcome::from_json_value(&value).unwrap(),
            accuracy_trial
        );
    }

    #[test]
    fn accuracy_summary_statistics_are_consistent() {
        let s = AccuracySummary::from_counts(6, 8, 0.125);
        assert_eq!(s.correct_trials, 6);
        assert_eq!(s.evaluated_trials, 8);
        assert!((s.accuracy - 0.75).abs() < 1e-12);
        assert!((s.top1_delta - -0.25).abs() < 1e-12);
        assert!(s.accuracy_ci_low < s.accuracy && s.accuracy < s.accuracy_ci_high);
        assert!((0.0..=1.0).contains(&s.accuracy_ci_low));
        assert!((0.0..=1.0).contains(&s.accuracy_ci_high));
        // No evidence: zero accuracy, full-width interval.
        let empty = AccuracySummary::from_counts(0, 0, 0.5);
        assert_eq!(empty.accuracy, 0.0);
        assert_eq!((empty.accuracy_ci_low, empty.accuracy_ci_high), (0.0, 1.0));
    }
}
