//! Dense matrix multiplication on protected PiM: computes a full 8×8
//! fixed-point matrix product element-by-element inside simulated STT-MRAM
//! arrays under ECiM protection with fault injection, validates every
//! element against the software reference, and reports the paper-style
//! overhead estimates for the whole `mm8` benchmark.
//!
//! Run with: `cargo run --release --example matmul_protected`

use nvpim::compiler::schedule::map_netlist;
use nvpim::core::config::DesignConfig;
use nvpim::core::executor::ProtectedExecutor;
use nvpim::core::system::{compare, evaluate};
use nvpim::sim::array::PimArray;
use nvpim::sim::fault::{ErrorRates, FaultInjector};
use nvpim::sim::technology::Technology;
use nvpim::workloads::matmul::{pack_dot_product_inputs, reference_matmul, row_netlist};
use nvpim::workloads::Benchmark;

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 8usize;
    let tech = Technology::SttMram;
    let a: Vec<u64> = (0..dim * dim).map(|i| (i as u64 * 37 + 11) % 256).collect();
    let b: Vec<u64> = (0..dim * dim).map(|i| (i as u64 * 101 + 3) % 256).collect();
    let reference = reference_matmul(&a, &b, dim);

    // Each PiM row computes one output element (a dim-term dot product).
    let netlist = row_netlist(dim);
    let config = DesignConfig::ecim(tech);
    let executor = ProtectedExecutor::new(config.clone());
    let schedule = map_netlist(&netlist, config.row_layout())?;
    println!(
        "mm{dim}: per-row program = {} gates, {} logic levels, {} area reclaims under ECiM",
        schedule.gate_op_count(),
        schedule.depth(),
        schedule.reclaim_count()
    );

    let rates = ErrorRates {
        gate: 0.0002,
        ..ErrorRates::NONE
    };
    let mut mismatches = 0usize;
    let mut detections = 0u64;
    let mut array = PimArray::standard(tech).with_fault_injector(FaultInjector::new(rates, 7));
    for i in 0..dim {
        for j in 0..dim {
            let a_row: Vec<u64> = (0..dim).map(|k| a[i * dim + k]).collect();
            let b_col: Vec<u64> = (0..dim).map(|k| b[k * dim + j]).collect();
            let inputs = pack_dot_product_inputs(&a_row, &b_col);
            let row = (i * dim + j) % array.rows();
            let report = executor.run(&netlist, &schedule, &mut array, row, &inputs)?;
            detections += report.errors_detected;
            if from_bits(&report.outputs) != reference[i * dim + j] {
                mismatches += 1;
            }
        }
    }
    println!(
        "computed {} elements under fault injection: {} mismatches, {} checker detections",
        dim * dim,
        mismatches,
        detections
    );

    // Paper-style overhead estimates for the whole benchmark.
    let bench = Benchmark::MatMul { dim };
    let shape = bench.shape();
    let baseline = evaluate(&netlist, &shape, &DesignConfig::unprotected(tech))?;
    for cfg in [DesignConfig::ecim(tech), DesignConfig::trim(tech)] {
        let est = evaluate(&netlist, &shape, &cfg)?;
        let o = compare(&est, &baseline);
        println!(
            "{:<22} time overhead {:>5.1}%  energy overhead {:>5.2}x  reclaims {}",
            cfg.label(),
            o.time_overhead_pct,
            o.energy_overhead,
            o.reclaims
        );
    }
    Ok(())
}
