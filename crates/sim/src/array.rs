//! The PiM memory array: a grid of nonvolatile cells that stores data *and*
//! executes Boolean gates in place (§II-A, Fig. 1).
//!
//! Each gate operation names a row, a set of input columns and one or more
//! output columns within that row. Execution follows the hardware semantics:
//! the output cells are preset, the control lines are biased, and the outputs
//! switch according to the gate's thresholding function of the input cells'
//! resistance states. Reads and writes go through the array interface (one
//! row-interface transaction at a time), which is what the paper's Checker
//! communication competes with.

use nvpim_ecc::gf2::BitVec;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultInjector, FaultSite};
use crate::gates::GateKind;
use crate::partition::PartitionConfig;
use crate::stats::ArrayStats;
use crate::technology::{Technology, TechnologyParams};

/// A single in-array gate operation: inputs and outputs are columns of `row`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateOp {
    /// The gate to execute.
    pub kind: GateKind,
    /// Row in which the gate fires.
    pub row: usize,
    /// Input cell columns.
    pub inputs: Vec<usize>,
    /// Output cell columns (all receive the same value for multi-output NOR).
    pub outputs: Vec<usize>,
}

impl GateOp {
    /// Convenience constructor.
    pub fn new(kind: GateKind, row: usize, inputs: Vec<usize>, outputs: Vec<usize>) -> Self {
        Self {
            kind,
            row,
            inputs,
            outputs,
        }
    }
}

/// Errors raised by array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A row or column index exceeded the array dimensions.
    OutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// The number of output columns does not match the gate kind.
    OutputArityMismatch {
        /// Outputs the gate kind drives.
        expected: usize,
        /// Outputs supplied.
        got: usize,
    },
    /// Two concurrent gate operations overlap in a partition.
    PartitionConflict {
        /// The partition where the conflict occurred.
        partition: usize,
    },
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::OutOfBounds { row, col } => {
                write!(f, "cell ({row}, {col}) is outside the array")
            }
            ArrayError::OutputArityMismatch { expected, got } => {
                write!(f, "gate drives {expected} outputs but {got} were supplied")
            }
            ArrayError::PartitionConflict { partition } => {
                write!(
                    f,
                    "concurrent gate operations overlap in partition {partition}"
                )
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// A nonvolatile PiM array of `rows × cols` cells.
#[derive(Debug, Clone)]
pub struct PimArray {
    technology: Technology,
    params: TechnologyParams,
    rows: usize,
    cols: usize,
    /// Logic values of the cells, row-major.
    cells: Vec<bool>,
    partitions: PartitionConfig,
    stats: ArrayStats,
    injector: FaultInjector,
}

impl PimArray {
    /// Creates an array with all cells holding logic 0 and fault injection
    /// disabled.
    pub fn new(technology: Technology, rows: usize, cols: usize) -> Self {
        Self {
            technology,
            params: technology.parameters(),
            rows,
            cols,
            cells: vec![false; rows * cols],
            partitions: PartitionConfig::single(cols),
            stats: ArrayStats::default(),
            injector: FaultInjector::disabled(),
        }
    }

    /// The 256×256 array used throughout the paper's evaluation.
    pub fn standard(technology: Technology) -> Self {
        Self::new(technology, 256, 256)
    }

    /// Replaces the fault injector.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Replaces the partition configuration.
    pub fn with_partitions(mut self, partitions: PartitionConfig) -> Self {
        assert_eq!(
            partitions.total_columns(),
            self.cols,
            "partition configuration must cover every column"
        );
        self.partitions = partitions;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The array's technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// The technology parameters in use.
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    /// The partition configuration.
    pub fn partitions(&self) -> &PartitionConfig {
        &self.partitions
    }

    /// Accumulated operation statistics.
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Resets the statistics counters (cell contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = ArrayStats::default();
    }

    /// Access to the fault injector (e.g. to read the fault log).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Mutable access to the fault injector.
    pub fn fault_injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    fn index(&self, row: usize, col: usize) -> Result<usize, ArrayError> {
        if row >= self.rows || col >= self.cols {
            Err(ArrayError::OutOfBounds { row, col })
        } else {
            Ok(row * self.cols + col)
        }
    }

    /// Reads a cell's logic value *without* going through the array interface
    /// (no sensing cost) — used internally by gate execution and by tests.
    pub fn peek(&self, row: usize, col: usize) -> Result<bool, ArrayError> {
        Ok(self.cells[self.index(row, col)?])
    }

    /// Writes a cell's logic value without cost accounting or fault
    /// injection. Used to initialize test fixtures and load input data that
    /// is assumed already resident (the paper's inputs live in the array).
    pub fn poke(&mut self, row: usize, col: usize, value: bool) -> Result<(), ArrayError> {
        let idx = self.index(row, col)?;
        self.cells[idx] = value;
        Ok(())
    }

    /// Loads a whole row of logic values without cost accounting.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != cols`.
    pub fn load_row(&mut self, row: usize, values: &BitVec) -> Result<(), ArrayError> {
        assert_eq!(values.len(), self.cols, "row load must cover every column");
        for col in 0..self.cols {
            self.poke(row, col, values.get(col))?;
        }
        Ok(())
    }

    /// Reads a cell through the read path (sense amplifier): costs read
    /// energy/latency and is subject to read-disturb faults.
    pub fn read_cell(&mut self, row: usize, col: usize) -> Result<bool, ArrayError> {
        let idx = self.index(row, col)?;
        let value = self.cells[idx];
        let sensed = self.injector.apply(FaultSite::Read, row, col, value);
        self.stats.record_read(1);
        Ok(sensed)
    }

    /// Writes a cell through the write path: costs write energy/latency and
    /// is subject to write faults.
    pub fn write_cell(&mut self, row: usize, col: usize, value: bool) -> Result<(), ArrayError> {
        let idx = self.index(row, col)?;
        let stored = self.injector.apply(FaultSite::Write, row, col, value);
        self.cells[idx] = stored;
        self.stats
            .record_write(1, self.params.write_energy(1), self.params.gate_delay_ns());
        Ok(())
    }

    /// Reads `cols.len()` cells of a row through the interface as one
    /// transaction (what a Checker transfer uses).
    pub fn read_bits(&mut self, row: usize, cols: &[usize]) -> Result<BitVec, ArrayError> {
        let mut out = BitVec::zeros(cols.len());
        for (i, &col) in cols.iter().enumerate() {
            let idx = self.index(row, col)?;
            let sensed = self
                .injector
                .apply(FaultSite::Read, row, col, self.cells[idx]);
            out.set(i, sensed);
        }
        self.stats.record_read(cols.len());
        Ok(out)
    }

    /// Writes `values.len()` cells of a row through the interface as one
    /// transaction (what a Checker correction write-back uses).
    pub fn write_bits(
        &mut self,
        row: usize,
        cols: &[usize],
        values: &BitVec,
    ) -> Result<(), ArrayError> {
        assert_eq!(cols.len(), values.len(), "column/value count mismatch");
        for (i, &col) in cols.iter().enumerate() {
            let idx = self.index(row, col)?;
            let stored = self
                .injector
                .apply(FaultSite::Write, row, col, values.get(i));
            self.cells[idx] = stored;
        }
        self.stats.record_write(
            cols.len(),
            self.params.write_energy(cols.len()),
            self.params.gate_delay_ns(),
        );
        Ok(())
    }

    /// Executes one in-array gate operation, returning the value the output
    /// cells ended up holding (after any injected fault).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::OutputArityMismatch`] if the number of output
    /// columns disagrees with the gate kind, or [`ArrayError::OutOfBounds`]
    /// for invalid cell coordinates.
    pub fn execute_gate(&mut self, op: &GateOp) -> Result<bool, ArrayError> {
        if op.outputs.len() != op.kind.output_count() {
            return Err(ArrayError::OutputArityMismatch {
                expected: op.kind.output_count(),
                got: op.outputs.len(),
            });
        }
        // Gather input logic values (in-array: no sensing cost).
        let mut inputs = Vec::with_capacity(op.inputs.len());
        for &col in &op.inputs {
            inputs.push(self.peek(op.row, col)?);
        }
        // Preset the output cells (part of the gate operation).
        for &col in &op.outputs {
            let idx = self.index(op.row, col)?;
            self.cells[idx] = op.kind.preset_value();
        }
        let ideal = op.kind.evaluate(&inputs);
        // Each output cell switches independently; faults are per output.
        let mut first_output_value = ideal;
        for (i, &col) in op.outputs.iter().enumerate() {
            let value = self
                .injector
                .apply(FaultSite::GateOutput, op.row, col, ideal);
            let idx = self.index(op.row, col)?;
            self.cells[idx] = value;
            if i == 0 {
                first_output_value = value;
            }
        }
        self.record_gate_cost(op);
        Ok(first_output_value)
    }

    fn record_gate_cost(&mut self, op: &GateOp) {
        let (energy, is_thr) = match op.kind {
            GateKind::Nor { outputs } => (self.params.nor_energy(outputs as usize), false),
            GateKind::Not | GateKind::Copy => (self.params.nor_energy(1), false),
            GateKind::Thr { .. } => (self.params.thr_energy(), true),
            GateKind::Preset { .. } => (self.params.write_energy(op.outputs.len()), false),
        };
        self.stats
            .record_gate(is_thr, energy, self.params.gate_delay_ns());
    }

    /// Executes a batch of gate operations that fire *simultaneously*
    /// (same time step, different rows and/or different partitions),
    /// enforcing the partition rule: no more than one gate operation may be
    /// in progress in one partition of one row at a time (§IV-C).
    ///
    /// Returns the output value of each operation, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PartitionConflict`] if two operations in the
    /// same row touch the same partition, plus any per-operation error.
    pub fn execute_simultaneous(&mut self, ops: &[GateOp]) -> Result<Vec<bool>, ArrayError> {
        self.partitions.validate_concurrent(ops)?;
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            results.push(self.execute_gate(op)?);
        }
        // A simultaneous batch advances logical time by a single gate delay;
        // the per-op accounting above accumulated serial latency, so adjust.
        if ops.len() > 1 {
            self.stats
                .absorb_parallel_latency(ops.len() - 1, self.params.gate_delay_ns());
        }
        self.injector.advance_step();
        Ok(results)
    }

    /// Returns a whole row's logic values (no cost; debugging/validation).
    pub fn snapshot_row(&self, row: usize) -> Result<BitVec, ArrayError> {
        let mut out = BitVec::zeros(self.cols);
        for col in 0..self.cols {
            out.set(col, self.peek(row, col)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ErrorRates;

    #[test]
    fn poke_peek_roundtrip_and_bounds() {
        let mut a = PimArray::new(Technology::SttMram, 4, 8);
        a.poke(2, 3, true).unwrap();
        assert!(a.peek(2, 3).unwrap());
        assert!(!a.peek(0, 0).unwrap());
        assert_eq!(
            a.poke(4, 0, true),
            Err(ArrayError::OutOfBounds { row: 4, col: 0 })
        );
        assert_eq!(
            a.peek(0, 8),
            Err(ArrayError::OutOfBounds { row: 0, col: 8 })
        );
    }

    #[test]
    fn standard_array_is_256x256() {
        let a = PimArray::standard(Technology::ReRam);
        assert_eq!((a.rows(), a.cols()), (256, 256));
    }

    #[test]
    fn nor_gate_executes_truth_table_in_array() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        for (x, y, expected) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            a.poke(0, 0, x).unwrap();
            a.poke(0, 1, y).unwrap();
            let op = GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]);
            let out = a.execute_gate(&op).unwrap();
            assert_eq!(out, expected);
            assert_eq!(a.peek(0, 2).unwrap(), expected);
        }
    }

    #[test]
    fn nor22_writes_both_outputs() {
        let mut a = PimArray::new(Technology::SotSheMram, 1, 8);
        a.poke(0, 0, false).unwrap();
        a.poke(0, 1, false).unwrap();
        let op = GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![3, 6]);
        assert!(a.execute_gate(&op).unwrap());
        assert!(a.peek(0, 3).unwrap());
        assert!(a.peek(0, 6).unwrap());
    }

    #[test]
    fn output_arity_mismatch_detected() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        let op = GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2]);
        assert_eq!(
            a.execute_gate(&op),
            Err(ArrayError::OutputArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn two_step_xor_in_array_matches_boolean_xor() {
        for x in [false, true] {
            for y in [false, true] {
                let mut a = PimArray::new(Technology::SttMram, 1, 8);
                a.poke(0, 0, x).unwrap();
                a.poke(0, 1, y).unwrap();
                // s1 = s2 = NOR22(a, b) into cols 2 and 3
                a.execute_gate(&GateOp::new(GateKind::NOR22, 0, vec![0, 1], vec![2, 3]))
                    .unwrap();
                // out = THR(a, b, s1, s2) into col 4
                let out = a
                    .execute_gate(&GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 3], vec![4]))
                    .unwrap();
                assert_eq!(out, x ^ y, "({x}, {y})");
            }
        }
    }

    #[test]
    fn gate_energy_and_counts_accumulate() {
        let mut a = PimArray::new(Technology::SttMram, 1, 8);
        a.execute_gate(&GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]))
            .unwrap();
        a.execute_gate(&GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 2], vec![3]))
            .unwrap();
        let p = Technology::SttMram.parameters();
        let stats = a.stats();
        assert_eq!(stats.gate_ops, 2);
        assert_eq!(stats.thr_ops, 1);
        assert!((stats.energy_fj - (p.nor_energy(1) + p.thr_energy())).abs() < 1e-9);
        assert!(stats.latency_ns >= 2.0 * p.gate_delay_ns());
    }

    #[test]
    fn reads_and_writes_are_metered() {
        let mut a = PimArray::new(Technology::ReRam, 2, 16);
        let cols: Vec<usize> = (0..8).collect();
        a.write_bits(0, &cols, &BitVec::from_u64(0xA5, 8)).unwrap();
        let read = a.read_bits(0, &cols).unwrap();
        assert_eq!(read.to_u64(), 0xA5);
        assert_eq!(a.stats().bits_written, 8);
        assert_eq!(a.stats().bits_read, 8);
        assert!(a.stats().energy_fj > 0.0);
    }

    #[test]
    fn write_faults_corrupt_stored_value() {
        let mut a =
            PimArray::new(Technology::SttMram, 1, 4).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    write: 1.0,
                    ..ErrorRates::NONE
                },
                9,
            ));
        a.write_cell(0, 0, true).unwrap();
        assert!(!a.peek(0, 0).unwrap());
        assert_eq!(a.fault_injector().fault_count(), 1);
    }

    #[test]
    fn gate_faults_flip_output() {
        let mut a =
            PimArray::new(Technology::SttMram, 1, 4).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    gate: 1.0,
                    ..ErrorRates::NONE
                },
                11,
            ));
        a.poke(0, 0, false).unwrap();
        a.poke(0, 1, false).unwrap();
        let out = a
            .execute_gate(&GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]))
            .unwrap();
        assert!(
            !out,
            "NOR(0,0)=1 must be flipped to 0 by the injected fault"
        );
    }

    #[test]
    fn simultaneous_ops_in_different_rows_advance_time_once() {
        let mut a = PimArray::new(Technology::SttMram, 4, 8);
        let ops: Vec<GateOp> = (0..4)
            .map(|r| GateOp::new(GateKind::NOR2, r, vec![0, 1], vec![2]))
            .collect();
        a.execute_simultaneous(&ops).unwrap();
        let delay = Technology::SttMram.parameters().gate_delay_ns();
        assert!((a.stats().latency_ns - delay).abs() < 1e-9);
        assert_eq!(a.stats().gate_ops, 4);
    }

    #[test]
    fn snapshot_row_reflects_loads() {
        let mut a = PimArray::new(Technology::ReRam, 2, 8);
        let row: BitVec = (0..8).map(|i| i % 2 == 0).collect();
        a.load_row(1, &row).unwrap();
        assert_eq!(a.snapshot_row(1).unwrap(), row);
    }
}
