//! Transposed, bit-sliced simulation backend: 64 Monte Carlo trials per
//! `u64` lane.
//!
//! The scalar [`PimArray`](crate::array::PimArray) packs the *columns* of
//! one trial into `u64` words; this module transposes the layout so each
//! logical cell is one `u64` whose bit *k* is that cell's value in **trial
//! *k***. Every gate-level operation of a fault-injection trial — NOR /
//! THR / copy semantics, the fused two-step XOR, presets, metadata writes —
//! is a bitwise function on GF(2), so one word operation advances 64
//! independent trials at once (the bulk-bitwise idea of Leitersdorf et
//! al., applied across trials instead of across columns).
//!
//! Fault injection stays *exact*: [`SlicedFaultInjector`] keeps one ChaCha8
//! stream and one geometric skip counter per lane, seeded with that trial's
//! existing per-trial seed, and merges the per-lane decisions into one
//! 64-bit flip mask per gate-output site. Lane *k*'s flip decisions, RNG
//! consumption and fault log are bit-identical to a scalar
//! [`FaultInjector`](crate::fault::FaultInjector) in its default skip-ahead
//! mode running trial *k* alone — the equivalence tests in this module and
//! the backend-equivalence suite in `nvpim-sweep` assert this end to end.
//!
//! The injector's per-op fast path is a single comparison: a global
//! gate-decision counter against the minimum next-fault index across all
//! lanes. At paper-regime rates (~1e-4) the 64-lane scan below that
//! comparison runs on well under 1% of operations.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nvpim_ecc::gf2::lanes::{self, at_least_three_zeros};

use crate::fault::{
    stuck_at_state, stuck_defect_seed, stuck_threshold, ErrorRates, FaultInjector, FaultSite,
    InjectedFault,
};

/// Number of Monte Carlo trials a sliced batch advances per word operation.
pub const LANES: usize = lanes::LANES;

/// Lane-masked fault injector: per-lane geometric skip sampling merged into
/// per-operation 64-bit flip masks.
///
/// Only *gate-output* faults are modeled, because that is the regime the
/// sweep engine runs (write/read/retention rates of zero consume neither
/// RNG state nor skip counters in the scalar injector, so omitting them
/// changes nothing). [`SlicedFaultInjector::supports`] gates backend
/// selection on exactly that condition.
#[derive(Debug, Clone, Default)]
pub struct SlicedFaultInjector {
    gate_rate: f64,
    /// `gate_rate >= 1.0`: every operation faults in every lane (the scalar
    /// skip decider's certain-fault path, which consumes no RNG).
    always: bool,
    lane_count: usize,
    valid: u64,
    /// One deterministic stream per lane (trial), seeded with the trial's
    /// fault seed.
    rngs: Vec<ChaCha8Rng>,
    /// Absolute gate-decision index of each lane's next fault
    /// (`u64::MAX` = never).
    next_event: Vec<u64>,
    /// Gate-output decisions made so far.
    event_index: u64,
    /// `min(next_event)` — the one comparison the per-op fast path makes.
    min_next: u64,
    /// Per-lane fault logs (allocation reused across resets).
    logs: Vec<Vec<InjectedFault>>,
    /// Hash threshold of the permanent stuck-at defect maps (0 = none).
    stuck_thresh: u64,
    /// Per-lane defect-map seeds, derived from each lane's fault seed by
    /// the same [`stuck_defect_seed`] hash the scalar injector uses.
    defect_seeds: Vec<u64>,
}

impl SlicedFaultInjector {
    /// An empty injector with no active lanes; [`Self::reset`] arms it.
    pub fn new() -> Self {
        Self {
            logs: (0..LANES).map(|_| Vec::new()).collect(),
            min_next: u64::MAX,
            ..Self::default()
        }
    }

    /// Whether `rates` fall in the regime the sliced backend reproduces
    /// exactly: gate-output faults only (any rate in `[0, 1]`), everything
    /// else zero. Permanent stuck-at defects are supported at any density —
    /// the per-lane defect maps are stateless hashes, so the lane streams
    /// stay bit-identical to their scalar counterparts.
    pub fn supports(rates: &ErrorRates) -> bool {
        rates.write == 0.0
            && rates.read == 0.0
            && rates.retention == 0.0
            && (0.0..=1.0).contains(&rates.gate)
            && (0.0..=1.0).contains(&rates.stuck_at)
    }

    /// Re-arms the injector for a fresh batch: one lane per seed, each
    /// lane's RNG stream and skip counter exactly as a scalar skip-ahead
    /// injector seeded with that value. Logs are cleared but keep their
    /// capacity (no steady-state allocation).
    ///
    /// # Panics
    ///
    /// Panics if `rates` is outside the supported regime (see
    /// [`Self::supports`]) or `seeds` is empty / longer than [`LANES`].
    pub fn reset(&mut self, rates: ErrorRates, seeds: &[u64]) {
        assert!(
            Self::supports(&rates),
            "sliced fault injection supports gate-only error rates, got {rates:?}"
        );
        assert!(
            (1..=LANES).contains(&seeds.len()),
            "a sliced batch carries 1..={LANES} lanes, got {}",
            seeds.len()
        );
        self.gate_rate = rates.gate;
        self.always = rates.gate >= 1.0;
        self.lane_count = seeds.len();
        self.valid = lanes::lane_mask(seeds.len());
        self.event_index = 0;
        for log in &mut self.logs {
            log.clear();
        }
        self.rngs.clear();
        self.next_event.clear();
        self.stuck_thresh = stuck_threshold(rates.stuck_at);
        self.defect_seeds.clear();
        if self.stuck_thresh != 0 {
            self.defect_seeds
                .extend(seeds.iter().map(|&s| stuck_defect_seed(s)));
        }
        let mut min_next = u64::MAX;
        for &seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            // The scalar injector samples its first skip lazily at the
            // first gate decision; with gate decisions as the only RNG
            // consumers, sampling it here yields the identical stream.
            let next = if self.always || self.gate_rate <= 0.0 {
                u64::MAX
            } else {
                FaultInjector::sample_geometric(&mut rng, self.gate_rate)
            };
            min_next = min_next.min(next);
            self.rngs.push(rng);
            self.next_event.push(next);
        }
        self.min_next = min_next;
    }

    /// Re-arms the injector like [`Self::reset`], but with every lane's
    /// *first* skip drawn from the geometric distribution conditioned on a
    /// fault landing within the next `window` gate decisions (see
    /// [`FaultInjector::sample_truncated_geometric`]). Later skips resample
    /// unconditionally, so each lane carries exactly the law of a trial
    /// conditioned on "≥ 1 fault in the window" — the sampled stratum of
    /// the stratified estimator. Falls back to [`Self::reset`] in regimes
    /// where conditioning is meaningless (rate 0, rate ≥ 1, empty window).
    ///
    /// # Panics
    ///
    /// As [`Self::reset`].
    pub fn reset_conditioned(&mut self, rates: ErrorRates, seeds: &[u64], window: u64) {
        self.reset(rates, seeds);
        if window == 0 || self.always || self.gate_rate <= 0.0 {
            return;
        }
        // Redraw each lane's eagerly-sampled first skip from the truncated
        // distribution. The lane RNGs have already consumed their first
        // draw in `reset`; conditioned streams are a different law than
        // exact streams by design, so no replay equivalence is owed here.
        let mut min_next = u64::MAX;
        for (rng, next) in self.rngs.iter_mut().zip(&mut self.next_event) {
            *next = FaultInjector::sample_truncated_geometric(rng, self.gate_rate, window);
            min_next = min_next.min(*next);
        }
        self.min_next = min_next;
    }

    /// Number of active lanes in the current batch.
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    /// The earliest upcoming gate-decision index (counted from the current
    /// decision) at which *any* lane faults — `u64::MAX` if no lane ever
    /// will. Immediately after a reset this is the minimum first-fault
    /// index over all lanes: if it is at or beyond the whole batch's
    /// decision window, every lane runs clean and the batch can be settled
    /// analytically without executing a single gate (the sliced half of
    /// the zero-fault fast path).
    pub fn next_fault_decision(&self) -> u64 {
        if self.always {
            // Certain-fault mode bypasses the per-lane counters: the very
            // next decision faults in every lane.
            0
        } else if self.min_next == u64::MAX {
            u64::MAX
        } else {
            self.min_next.saturating_sub(self.event_index)
        }
    }

    /// Mask of the valid (active) lanes.
    pub fn valid_mask(&self) -> u64 {
        self.valid
    }

    /// The gate-output fault rate in force.
    pub fn gate_rate(&self) -> f64 {
        self.gate_rate
    }

    /// The fault log of one lane — bit-identical to the scalar injector's
    /// log for that trial.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lane_count()`.
    pub fn lane_log(&self, lane: usize) -> &[InjectedFault] {
        assert!(lane < self.lane_count, "lane {lane} out of range");
        &self.logs[lane]
    }

    /// Number of faults injected into one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lane_count()`.
    pub fn lane_fault_count(&self, lane: usize) -> usize {
        assert!(lane < self.lane_count, "lane {lane} out of range");
        self.logs[lane].len()
    }

    /// Current capacity of a lane's log allocation (observability for the
    /// arena-purity tests: capacity must survive [`Self::reset`]).
    pub fn lane_log_capacity(&self, lane: usize) -> usize {
        self.logs[lane].capacity()
    }

    /// Whether any permanent stuck-at density is in force. When false,
    /// every store path below is the plain pre-defect word operation.
    #[inline]
    pub fn has_defects(&self) -> bool {
        self.stuck_thresh != 0
    }

    /// Per-lane stuck-at masks for cell (`row`, `col`): `(sa0, sa1)` where
    /// bit *k* of `sa0` means trial *k*'s cell is stuck-at-0 and bit *k* of
    /// `sa1` stuck-at-1. A stored word `v` lands as `(v & !sa0) | sa1` —
    /// the lane-parallel form of the scalar injector's post-decision
    /// override. Pure hash lookups: no RNG state is consumed, so transient
    /// lane streams are untouched.
    #[inline]
    pub fn stuck_masks(&self, row: usize, col: usize) -> (u64, u64) {
        if self.stuck_thresh == 0 {
            return (0, 0);
        }
        let mut sa0 = 0u64;
        let mut sa1 = 0u64;
        for lane in 0..self.lane_count {
            match stuck_at_state(self.defect_seeds[lane], self.stuck_thresh, row, col) {
                Some(true) => sa1 |= 1u64 << lane,
                Some(false) => sa0 |= 1u64 << lane,
                None => {}
            }
        }
        (sa0, sa1)
    }

    /// One gate-output fault decision for all lanes at cell (`row`, `col`):
    /// returns the mask of lanes whose produced bit flips, logging each
    /// flip. The per-trial marginal is exactly Bernoulli(`gate_rate`), and
    /// lane *k*'s decision sequence matches a scalar skip-ahead injector
    /// seeded with lane *k*'s seed, decision for decision.
    #[inline]
    pub fn gate_flip_mask(&mut self, row: usize, col: usize) -> u64 {
        let e = self.event_index;
        self.event_index += 1;
        if self.always {
            for lane in 0..self.lane_count {
                self.logs[lane].push(InjectedFault {
                    site: FaultSite::GateOutput,
                    row,
                    col,
                    step: 0,
                });
            }
            return self.valid;
        }
        if e < self.min_next {
            return 0;
        }
        // Slow path: at least one lane faults at this decision. Rebuild the
        // minimum while resampling the faulting lanes.
        let mut mask = 0u64;
        let mut min_next = u64::MAX;
        for lane in 0..self.lane_count {
            let mut next = self.next_event[lane];
            if next == e {
                mask |= 1u64 << lane;
                self.logs[lane].push(InjectedFault {
                    site: FaultSite::GateOutput,
                    row,
                    col,
                    step: 0,
                });
                // Scalar resample: after a fault at decision `e` with a
                // fresh geometric skip `s`, the next fault lands at
                // decision `e + s + 1`.
                let skip = FaultInjector::sample_geometric(&mut self.rngs[lane], self.gate_rate);
                next = e.saturating_add(1).saturating_add(skip);
                self.next_event[lane] = next;
            }
            min_next = min_next.min(next);
        }
        self.min_next = min_next;
        mask
    }
}

/// A PiM array in the transposed lane layout: cell (`row`, `col`) is one
/// `u64` whose bit *k* is the cell's logic value in trial *k*.
///
/// The op surface mirrors what `ProtectedExecutor` drives on the scalar
/// array — gate execution, presets, metadata writes, cell reads — minus
/// energy/latency accounting (trial outcomes never consume
/// [`ArrayStats`](crate::stats::ArrayStats), so the sliced hot path skips
/// the bookkeeping entirely). Bounds are validated by the executor before a
/// run; out-of-range cells panic via slice indexing.
#[derive(Debug, Clone)]
pub struct SlicedPimArray {
    rows: usize,
    cols: usize,
    cells: Vec<u64>,
    injector: SlicedFaultInjector,
}

impl SlicedPimArray {
    /// An array of `rows × cols` lane-cells, all zero, injector disarmed.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cells: vec![0; rows * cols],
            injector: SlicedFaultInjector::new(),
        }
    }

    /// One 256-column row — the shape a single-row Monte Carlo trial uses
    /// (the paper's standard 256×256 array computes row-parallel; each
    /// trial exercises one row).
    pub fn standard_row() -> Self {
        Self::new(1, 256)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The lane-masked fault injector.
    pub fn injector(&self) -> &SlicedFaultInjector {
        &self.injector
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// The lane word of cell (`row`, `col`) — the sliced `peek`.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> u64 {
        self.cells[self.idx(row, col)]
    }

    /// Overwrites the lane word of cell (`row`, `col`) — the sliced `poke`.
    #[inline]
    pub fn set_cell(&mut self, row: usize, col: usize, word: u64) {
        let i = self.idx(row, col);
        self.cells[i] = word;
    }

    /// Applies the cell's per-lane stuck-at masks to a word about to be
    /// stored — the lane-parallel twin of the scalar injector's
    /// post-decision override at storing sites.
    #[inline]
    fn pin_defects(&self, row: usize, col: usize, word: u64) -> u64 {
        let (sa0, sa1) = self.injector.stuck_masks(row, col);
        (word & !sa0) | sa1
    }

    /// Writes per-lane values through the write path. With the supported
    /// gate-only fault regime the write path is fault-free, so this is a
    /// plain store — exactly what the scalar write path reduces to at a
    /// zero write-fault rate — pinned by any stuck-at defects.
    #[inline]
    pub fn write_lanes(&mut self, row: usize, col: usize, values: u64) {
        let stored = self.pin_defects(row, col, values);
        self.set_cell(row, col, stored);
    }

    /// Writes the same constant into every lane of a cell (the `Preset`
    /// data write of constant gates), pinned by any stuck-at defects.
    #[inline]
    pub fn write_const(&mut self, row: usize, col: usize, value: bool) {
        self.write_lanes(row, col, if value { u64::MAX } else { 0 });
    }

    /// The verified periphery write the recompute schemes use: a reliable
    /// store with no transient fault decision (consumes no RNG), but stuck
    /// cells still pin their lanes — rewriting cannot repair broken
    /// hardware. Mirrors the scalar array's `write_verified`.
    #[inline]
    pub fn write_verified_lanes(&mut self, row: usize, col: usize, values: u64) {
        let stored = self.pin_defects(row, col, values);
        self.set_cell(row, col, stored);
    }

    /// Presets a contiguous column range of `row` to `value` in all lanes
    /// (the row-parallel metadata preset). A pure range fill without
    /// defects; per-cell pinned stores when a defect map is in force.
    pub fn preset_range(&mut self, row: usize, cols: std::ops::Range<usize>, value: bool) {
        if cols.is_empty() {
            return;
        }
        if self.injector.has_defects() {
            for col in cols {
                self.write_const(row, col, value);
            }
            return;
        }
        let start = self.idx(row, cols.start);
        let end = self.idx(row, cols.end - 1) + 1;
        self.cells[start..end].fill(if value { u64::MAX } else { 0 });
    }

    /// Multi-output NOR: every output cell receives `NOR(inputs)` XOR its
    /// own per-lane fault mask, in output order (one fault decision per
    /// output cell, matching the scalar gate's per-output injection).
    pub fn gate_nor(&mut self, row: usize, inputs: &[usize], outputs: &[usize]) {
        let mut any = 0u64;
        for &col in inputs {
            any |= self.cell(row, col);
        }
        let ideal = !any;
        for &col in outputs {
            let flips = self.injector.gate_flip_mask(row, col);
            let stored = self.pin_defects(row, col, ideal ^ flips);
            self.set_cell(row, col, stored);
        }
    }

    /// Single-output copy.
    pub fn gate_copy(&mut self, row: usize, input: usize, output: usize) {
        let ideal = self.cell(row, input);
        let flips = self.injector.gate_flip_mask(row, output);
        let stored = self.pin_defects(row, output, ideal ^ flips);
        self.set_cell(row, output, stored);
    }

    /// The 4-input thresholding gate (output switches when ≥ 3 inputs are
    /// 0), evaluated lane-parallel with the bit-sliced zero counter.
    pub fn gate_thr(&mut self, row: usize, inputs: &[usize], output: usize) {
        let ideal = at_least_three_zeros(inputs.iter().map(|&col| self.cell(row, col)));
        let flips = self.injector.gate_flip_mask(row, output);
        let stored = self.pin_defects(row, output, ideal ^ flips);
        self.set_cell(row, output, stored);
    }

    /// The fused two-step in-array XOR (`s1 = s2 = NOR(a, b)` then
    /// `dst = THR(a, b, s1, s2)`), with fault decisions in the scalar
    /// order: `s1`, `s2`, `dst`. ECiM's parity-fold primitive.
    pub fn gate_xor2(
        &mut self,
        row: usize,
        a_col: usize,
        b_col: usize,
        s1_col: usize,
        s2_col: usize,
        dst_col: usize,
    ) {
        let a = self.cell(row, a_col);
        let b = self.cell(row, b_col);
        let nor = !(a | b);
        // Stuck pins apply before the THR step reads the working cells back,
        // matching the scalar order (decision, override, then step 2).
        let s1_flips = self.injector.gate_flip_mask(row, s1_col);
        let s1 = self.pin_defects(row, s1_col, nor ^ s1_flips);
        self.set_cell(row, s1_col, s1);
        let s2_flips = self.injector.gate_flip_mask(row, s2_col);
        let s2 = self.pin_defects(row, s2_col, nor ^ s2_flips);
        self.set_cell(row, s2_col, s2);
        let thr = at_least_three_zeros([a, b, s1, s2]);
        let dst_flips = self.injector.gate_flip_mask(row, dst_col);
        let out = self.pin_defects(row, dst_col, thr ^ dst_flips);
        self.set_cell(row, dst_col, out);
    }

    /// Resets the array in place for a fresh batch of up to 64 trials:
    /// every cell back to 0 in every lane (one memset) and the injector
    /// re-armed with one seed per lane. A reset array is observationally
    /// identical to a freshly constructed one.
    ///
    /// # Panics
    ///
    /// As [`SlicedFaultInjector::reset`].
    pub fn reset_for_batch(&mut self, rates: ErrorRates, seeds: &[u64]) {
        self.cells.fill(0);
        self.injector.reset(rates, seeds);
    }

    /// [`Self::reset_for_batch`] with every lane conditioned on injecting
    /// at least one fault within the next `window` gate decisions (the
    /// stratified estimator's sampled stratum; see
    /// [`SlicedFaultInjector::reset_conditioned`]).
    ///
    /// # Panics
    ///
    /// As [`SlicedFaultInjector::reset`].
    pub fn reset_for_conditioned_batch(&mut self, rates: ErrorRates, seeds: &[u64], window: u64) {
        self.cells.fill(0);
        self.injector.reset_conditioned(rates, seeds, window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PimArray;
    use crate::gates::GateKind;
    use crate::technology::Technology;

    fn gate_rates(p: f64) -> ErrorRates {
        ErrorRates {
            gate: p,
            ..ErrorRates::NONE
        }
    }

    fn lane_seed(batch_seed: u64, lane: usize) -> u64 {
        batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (lane as u64)
    }

    #[test]
    fn flip_masks_match_scalar_skip_ahead_injectors_decision_for_decision() {
        for p in [0.0, 1e-3, 0.05, 0.5, 1.0] {
            let lanes = 64usize;
            let seeds: Vec<u64> = (0..lanes).map(|l| lane_seed(7, l)).collect();
            let mut sliced = SlicedFaultInjector::new();
            sliced.reset(gate_rates(p), &seeds);
            let mut scalars: Vec<FaultInjector> = seeds
                .iter()
                .map(|&s| FaultInjector::new(gate_rates(p), s))
                .collect();
            for op in 0..4_000usize {
                let (row, col) = (op % 3, op % 251);
                let mask = sliced.gate_flip_mask(row, col);
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    // `apply` on a `false` bit returns `true` iff flipped.
                    let flipped = scalar.apply(FaultSite::GateOutput, row, col, false);
                    assert_eq!(
                        (mask >> lane) & 1 == 1,
                        flipped,
                        "p={p} op={op} lane={lane}"
                    );
                }
            }
            for (lane, scalar) in scalars.iter().enumerate() {
                assert_eq!(
                    sliced.lane_log(lane),
                    scalar.log(),
                    "p={p} lane={lane}: logs must be bit-identical"
                );
            }
            if p > 0.0 && p < 1.0 {
                assert!(
                    (0..lanes).any(|l| sliced.lane_fault_count(l) > 0),
                    "p={p}: this regime must inject faults"
                );
            }
        }
    }

    #[test]
    fn ragged_batches_never_touch_invalid_lanes() {
        let seeds: Vec<u64> = (0..5).map(|l| lane_seed(3, l)).collect();
        let mut inj = SlicedFaultInjector::new();
        inj.reset(gate_rates(0.2), &seeds);
        assert_eq!(inj.lane_count(), 5);
        assert_eq!(inj.valid_mask(), 0b11111);
        let mut any = 0u64;
        for op in 0..2_000 {
            any |= inj.gate_flip_mask(0, op % 17);
        }
        assert_ne!(any, 0, "faults must fire");
        assert_eq!(any & !0b11111, 0, "no flips outside the valid lanes");
    }

    #[test]
    fn reset_reuses_log_capacity_and_reproduces_streams() {
        let seeds: Vec<u64> = (0..16).map(|l| lane_seed(11, l)).collect();
        let mut inj = SlicedFaultInjector::new();
        inj.reset(gate_rates(0.1), &seeds);
        let run = |inj: &mut SlicedFaultInjector| -> Vec<u64> {
            (0..1_500)
                .map(|op| inj.gate_flip_mask(0, op % 13))
                .collect()
        };
        let baseline = run(&mut inj);
        let caps: Vec<usize> = (0..16).map(|l| inj.lane_log_capacity(l)).collect();
        assert!(caps.iter().any(|&c| c > 0));
        // Reset to the same seeds: identical masks, no capacity loss.
        inj.reset(gate_rates(0.1), &seeds);
        for (lane, &cap) in caps.iter().enumerate() {
            assert!(
                inj.lane_log_capacity(lane) >= cap,
                "lane {lane}: log capacity must survive reset"
            );
        }
        assert_eq!(run(&mut inj), baseline);
        // A different seed vector diverges.
        let other: Vec<u64> = (0..16).map(|l| lane_seed(12, l)).collect();
        inj.reset(gate_rates(0.1), &other);
        assert_ne!(run(&mut inj), baseline);
    }

    #[test]
    fn unsupported_rate_regimes_are_rejected() {
        assert!(SlicedFaultInjector::supports(&gate_rates(1e-4)));
        assert!(SlicedFaultInjector::supports(&ErrorRates::NONE));
        assert!(!SlicedFaultInjector::supports(&ErrorRates::uniform(1e-4)));
        assert!(!SlicedFaultInjector::supports(&ErrorRates {
            write: 0.1,
            ..ErrorRates::NONE
        }));
        let mut inj = SlicedFaultInjector::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.reset(ErrorRates::uniform(0.5), &[1, 2]);
        }));
        assert!(result.is_err(), "mixed-site rates must be refused");
    }

    /// Drives the same operation program through one sliced array and 64
    /// scalar arrays (one per lane seed), then asserts every cell and every
    /// fault log agree lane for lane.
    #[test]
    fn sliced_gate_programs_match_per_lane_scalar_arrays() {
        let p = 0.05; // high enough to exercise flips in a short program
        let lanes = 64usize;
        let seeds: Vec<u64> = (0..lanes).map(|l| lane_seed(21, l)).collect();
        let mut sliced = SlicedPimArray::new(1, 32);
        sliced.reset_for_batch(gate_rates(p), &seeds);
        let mut scalars: Vec<PimArray> = seeds
            .iter()
            .map(|&s| {
                PimArray::new(Technology::SttMram, 1, 32)
                    .with_fault_injector(FaultInjector::new(gate_rates(p), s))
            })
            .collect();

        // Per-lane data writes: lane l starts from a distinct bit pattern.
        for col in 0..4 {
            let mut word = 0u64;
            for (lane, _) in seeds.iter().enumerate() {
                let bit = (lane + col) % 3 == 0;
                word |= u64::from(bit) << lane;
                scalars[lane].write_cell(0, col, bit).unwrap();
            }
            sliced.write_lanes(0, col, word);
        }

        // A mixed program covering every op class, repeated for depth.
        for round in 0..40usize {
            sliced.gate_nor(0, &[0, 1], &[4, 5]);
            sliced.gate_copy(0, 4, 6);
            sliced.gate_thr(0, &[0, 1, 4, 5], 7);
            sliced.gate_xor2(0, 2, 3, 8, 9, 10);
            sliced.preset_range(0, 12..20, round % 2 == 0);
            sliced.gate_nor(0, &[10, 6], &[2]);
            for scalar in &mut scalars {
                scalar
                    .execute_gate_with(GateKind::NOR22, 0, &[0, 1], &[4, 5])
                    .unwrap();
                scalar
                    .execute_gate_with(GateKind::Copy, 0, &[4], &[6])
                    .unwrap();
                scalar
                    .execute_gate_with(GateKind::THR, 0, &[0, 1, 4, 5], &[7])
                    .unwrap();
                scalar.execute_xor2_step(0, 2, 3, 8, 9, 10).unwrap();
                scalar.preset_cells(0, 12..20, round % 2 == 0).unwrap();
                scalar
                    .execute_gate_with(GateKind::NOR2, 0, &[10, 6], &[2])
                    .unwrap();
            }
        }

        for (lane, scalar) in scalars.iter().enumerate() {
            for col in 0..32 {
                assert_eq!(
                    (sliced.cell(0, col) >> lane) & 1 == 1,
                    scalar.peek(0, col).unwrap(),
                    "lane {lane} col {col}"
                );
            }
            assert_eq!(
                sliced.injector().lane_log(lane),
                scalar.fault_injector().log(),
                "lane {lane} fault log"
            );
        }
        assert!(
            (0..lanes).any(|l| sliced.injector().lane_fault_count(l) > 0),
            "program must inject faults at p = {p}"
        );
    }

    /// The same program as above, but with a permanent stuck-at defect map
    /// layered on top of the transient faults: every store path must pin
    /// defective lanes exactly like the scalar injector's override, and the
    /// transient lane streams must stay bit-identical (defect lookups are
    /// stateless hashes that consume no RNG).
    #[test]
    fn stuck_at_defect_maps_match_per_lane_scalar_arrays() {
        let rates = ErrorRates {
            gate: 0.05,
            ..ErrorRates::NONE
        }
        .with_stuck_at(0.08);
        assert!(SlicedFaultInjector::supports(&rates));
        let lanes = 64usize;
        let seeds: Vec<u64> = (0..lanes).map(|l| lane_seed(33, l)).collect();
        let mut sliced = SlicedPimArray::new(1, 32);
        sliced.reset_for_batch(rates, &seeds);
        assert!(sliced.injector().has_defects());
        let mut scalars: Vec<PimArray> = seeds
            .iter()
            .map(|&s| {
                PimArray::new(Technology::ReramCrossbar, 1, 32)
                    .with_fault_injector(FaultInjector::new(rates, s))
            })
            .collect();

        for col in 0..4 {
            let mut word = 0u64;
            for (lane, _) in seeds.iter().enumerate() {
                let bit = (lane + col) % 3 == 0;
                word |= u64::from(bit) << lane;
                scalars[lane].write_cell(0, col, bit).unwrap();
            }
            sliced.write_lanes(0, col, word);
        }

        for round in 0..40usize {
            sliced.gate_nor(0, &[0, 1], &[4, 5]);
            sliced.gate_copy(0, 4, 6);
            sliced.gate_thr(0, &[0, 1, 4, 5], 7);
            sliced.gate_xor2(0, 2, 3, 8, 9, 10);
            sliced.preset_range(0, 12..20, round % 2 == 0);
            sliced.write_verified_lanes(0, 11, if round % 2 == 0 { u64::MAX } else { 0 });
            sliced.gate_nor(0, &[10, 6], &[2]);
            for scalar in &mut scalars {
                scalar
                    .execute_gate_with(GateKind::NOR22, 0, &[0, 1], &[4, 5])
                    .unwrap();
                scalar
                    .execute_gate_with(GateKind::Copy, 0, &[4], &[6])
                    .unwrap();
                scalar
                    .execute_gate_with(GateKind::THR, 0, &[0, 1, 4, 5], &[7])
                    .unwrap();
                scalar.execute_xor2_step(0, 2, 3, 8, 9, 10).unwrap();
                scalar.preset_cells(0, 12..20, round % 2 == 0).unwrap();
                scalar.write_verified(0, 11, round % 2 == 0).unwrap();
                scalar
                    .execute_gate_with(GateKind::NOR2, 0, &[10, 6], &[2])
                    .unwrap();
            }
        }

        let mut defective_lanes = 0usize;
        for (lane, scalar) in scalars.iter().enumerate() {
            for col in 0..32 {
                assert_eq!(
                    (sliced.cell(0, col) >> lane) & 1 == 1,
                    scalar.peek(0, col).unwrap(),
                    "lane {lane} col {col}"
                );
                if scalar.fault_injector().stuck_value(0, col).is_some() {
                    defective_lanes += 1;
                }
            }
            assert_eq!(
                sliced.injector().lane_log(lane),
                scalar.fault_injector().log(),
                "lane {lane} fault log must be untouched by the defect map"
            );
        }
        assert!(
            defective_lanes > 0,
            "density 0.08 over 64 lanes x 32 cells must place defects"
        );
    }

    #[test]
    fn conditioned_reset_faults_every_lane_inside_the_window() {
        let (p, window) = (1e-4, 800u64);
        for batch_seed in 0..8u64 {
            let seeds: Vec<u64> = (0..64).map(|l| lane_seed(batch_seed, l)).collect();
            let mut inj = SlicedFaultInjector::new();
            inj.reset_conditioned(gate_rates(p), &seeds, window);
            assert!(
                inj.next_fault_decision() < window,
                "batch {batch_seed}: some lane must fault in-window"
            );
            let mut fired = 0u64;
            for op in 0..window {
                fired |= inj.gate_flip_mask(0, op as usize % 251);
            }
            assert_eq!(
                fired,
                inj.valid_mask(),
                "batch {batch_seed}: every lane must fault within the window"
            );
        }
    }

    #[test]
    fn next_fault_decision_tracks_the_min_over_lanes() {
        let seeds: Vec<u64> = (0..64).map(|l| lane_seed(77, l)).collect();
        let mut inj = SlicedFaultInjector::new();
        inj.reset(gate_rates(0.0), &seeds);
        assert_eq!(inj.next_fault_decision(), u64::MAX, "rate 0 never faults");
        inj.reset(gate_rates(1.0), &seeds);
        assert_eq!(
            inj.next_fault_decision(),
            0,
            "certain faults fire immediately"
        );
        inj.reset(gate_rates(0.01), &seeds);
        let first = inj.next_fault_decision();
        assert!(first < u64::MAX);
        // Mirror against 64 scalar injectors: the minimum primed first-fault
        // index must agree.
        let scalar_min = seeds
            .iter()
            .map(|&s| {
                let mut scalar = FaultInjector::new(gate_rates(0.01), s);
                scalar.next_fault_in(FaultSite::GateOutput).unwrap()
            })
            .min()
            .unwrap();
        assert_eq!(first, scalar_min);
        // Decisions made so far shift the remaining distance down.
        for op in 0..3usize {
            inj.gate_flip_mask(0, op);
        }
        assert!(inj.next_fault_decision() <= first);
    }

    #[test]
    fn batch_reset_restores_a_pristine_array() {
        let seeds: Vec<u64> = (0..8).map(|l| lane_seed(5, l)).collect();
        let mut reused = SlicedPimArray::new(2, 16);
        reused.reset_for_batch(gate_rates(0.1), &seeds);
        reused.write_lanes(0, 3, u64::MAX);
        reused.gate_nor(0, &[0, 1], &[2]);
        reused.reset_for_batch(gate_rates(0.1), &seeds);

        let mut fresh = SlicedPimArray::new(2, 16);
        fresh.reset_for_batch(gate_rates(0.1), &seeds);
        for col in 0..16 {
            assert_eq!(reused.cell(0, col), fresh.cell(0, col), "col {col}");
        }
        for op in 0..500 {
            reused.gate_nor(0, &[0, 1], &[2]);
            fresh.gate_nor(0, &[0, 1], &[2]);
            assert_eq!(reused.cell(0, 2), fresh.cell(0, 2), "op {op}");
        }
        for lane in 0..8 {
            assert_eq!(
                reused.injector().lane_log(lane),
                fresh.injector().lane_log(lane)
            );
        }
    }
}
