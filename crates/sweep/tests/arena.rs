//! Arena-reset purity: the per-thread [`TrialArena`] reuses its array and
//! buffers across trials, and that reuse must be observationally invisible —
//! back-to-back trials in one warmed-up arena are bit-for-bit identical to
//! trials run in fresh arenas, across protection schemes, technologies and
//! Hamming configurations. This is the invariant that lets `map_init`
//! hand arenas to arbitrary subsets of the trial grid without affecting
//! report bytes.

use nvpim_sim::technology::Technology;
use nvpim_sweep::{ProtectionConfig, SweepWorkload, TrialArena, TrialHarness, TrialOutcome};

const SEED: u64 = 0xA4E7A;

fn mac() -> SweepWorkload {
    SweepWorkload::Mac {
        acc_bits: 8,
        mul_bits: 4,
    }
}

fn harness(protection: ProtectionConfig, tech: Technology, rate: f64) -> TrialHarness {
    TrialHarness::new(mac(), protection, protection.design_config(tech), rate)
        .expect("point compiles")
}

fn run_reused(h: &TrialHarness, trials: u64) -> Vec<TrialOutcome> {
    let mut arena = TrialArena::new();
    (0..trials)
        .map(|t| h.run_trial(SEED, t, &mut arena))
        .collect()
}

fn run_fresh(h: &TrialHarness, trials: u64) -> Vec<TrialOutcome> {
    (0..trials)
        .map(|t| {
            let mut arena = TrialArena::new();
            h.run_trial(SEED, t, &mut arena)
        })
        .collect()
}

#[test]
fn arena_reuse_is_bit_identical_to_fresh_arenas_per_scheme() {
    // A demanding error rate so trials actually inject faults, detect
    // errors and write corrections — the full hot path, not the clean path.
    for protection in [
        ProtectionConfig::UNPROTECTED,
        ProtectionConfig::ECIM,
        ProtectionConfig::ECIM_SINGLE_OUTPUT,
        ProtectionConfig::TRIM,
        ProtectionConfig::TRIM_SINGLE_OUTPUT,
    ] {
        let h = harness(protection, Technology::SttMram, 1e-3);
        let reused = run_reused(&h, 16);
        let fresh = run_fresh(&h, 16);
        assert_eq!(reused, fresh, "{}", protection.label());
        assert!(
            reused.iter().any(|o| o.faults_injected > 0),
            "{}: this regime must inject faults",
            protection.label()
        );
    }
}

#[test]
fn one_arena_serves_points_of_different_technologies_and_codes() {
    // The campaign loop hands one arena trials from *different* points.
    // Interleaving points (different technology, different Hamming code)
    // through a single arena must reproduce per-point fresh-arena results.
    let points = [
        harness(ProtectionConfig::ECIM, Technology::SttMram, 1e-3),
        harness(ProtectionConfig::TRIM, Technology::ReRam, 3e-4),
        TrialHarness::new(
            mac(),
            ProtectionConfig::ECIM,
            ProtectionConfig::ECIM
                .design_config(Technology::SotSheMram)
                .with_hamming_data_bits(64), // Hamming(71, 64)
            1e-4,
        )
        .expect("shortened point compiles"),
    ];
    let trials = 8u64;
    let mut arena = TrialArena::new();
    let mut interleaved: Vec<Vec<TrialOutcome>> = vec![Vec::new(); points.len()];
    for t in 0..trials {
        for (pi, h) in points.iter().enumerate() {
            interleaved[pi].push(h.run_trial(SEED, t, &mut arena));
        }
    }
    for (pi, h) in points.iter().enumerate() {
        assert_eq!(
            interleaved[pi],
            run_fresh(h, trials),
            "point {pi} must be unaffected by arena sharing"
        );
    }
}

#[test]
fn trial_outcomes_are_a_pure_function_of_seed_and_point() {
    // Same seed → identical outcome; different seeds → different fault
    // patterns somewhere in the batch (the determinism the report's
    // byte-identity rests on).
    let h = harness(ProtectionConfig::ECIM, Technology::SttMram, 1e-3);
    let a = run_reused(&h, 24);
    let b = run_reused(&h, 24);
    assert_eq!(a, b);
    let mut arena = TrialArena::new();
    let other: Vec<TrialOutcome> = (0..24)
        .map(|t| h.run_trial(SEED ^ 1, t, &mut arena))
        .collect();
    assert_ne!(a, other, "the campaign seed must matter");
}
