//! Column-wise (homomorphic) ECC candidates and why they fail the paper's
//! practicality criteria (§III-A and §VII).
//!
//! The column-wise layout of Fig. 2a requires an ECC operator `f` such that
//! the output column's check symbols can be derived *from the input check
//! symbols alone*: `s = NOR(a, b)  ⟺  c_s = f(c_a, c_b)`. The paper surveys
//! Reed–Muller style linear homomorphic codes and arithmetic codes (Berger,
//! AN, ANB, residue) and concludes that none of them satisfies all three
//! criteria — homomorphism over bulk bitwise logic, modest storage, and cheap
//! `f` — which is why the paper (and this crate's ECiM implementation)
//! adopts row-wise ECC instead.
//!
//! This module implements a Berger code (the only arithmetic code that can
//! compute bitwise operations homomorphically at all) together with an
//! explicit cost model for the column-wise criteria, so the design-space
//! argument of §III can be reproduced quantitatively.

use serde::{Deserialize, Serialize};

use crate::gf2::BitVec;

/// A Berger code for `k`-bit data words: the check symbol is the binary count
/// of zero bits in the data word, using `ceil(log2(k+1))` check bits.
///
/// Berger codes detect all unidirectional errors, and their check symbol can
/// be *predicted* across some operations (e.g. a bitwise NOT simply maps the
/// count of zeros to `k − count`), which is why the paper discusses them as
/// the closest arithmetic-code candidate for column-wise PiM ECC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BergerCode {
    k: usize,
}

impl BergerCode {
    /// Creates a Berger code for `k`-bit data.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Berger code requires at least one data bit");
        Self { k }
    }

    /// Number of data bits.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of check bits, `ceil(log2(k + 1))`.
    pub fn check_bits(&self) -> usize {
        usize::BITS as usize - self.k.leading_zeros() as usize
    }

    /// Computes the check symbol (count of zero bits) for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn check_symbol(&self, data: &BitVec) -> u32 {
        assert_eq!(data.len(), self.k, "data length must equal k = {}", self.k);
        (self.k - data.count_ones()) as u32
    }

    /// Verifies a (data, check) pair.
    pub fn verify(&self, data: &BitVec, check: u32) -> bool {
        self.check_symbol(data) == check
    }

    /// Predicts the check symbol of `NOT data` from the check symbol of
    /// `data` alone — the one bitwise operation for which Berger codes are
    /// perfectly homomorphic.
    pub fn predict_not(&self, check: u32) -> u32 {
        self.k as u32 - check
    }

    /// Attempts to predict the check symbol of `a NOR b` from the input
    /// check symbols alone. This is **impossible** for Berger codes — the
    /// zero count of `a NOR b` depends on the overlap of the zero positions,
    /// not just their counts — so this returns the feasible *range*
    /// `[min, max]` of the output check symbol, demonstrating criterion 1's
    /// failure quantitatively.
    pub fn predict_nor_range(&self, check_a: u32, check_b: u32) -> (u32, u32) {
        let k = self.k as u32;
        let zeros_a = check_a;
        let zeros_b = check_b;
        // NOR output bit is 1 only where both inputs are 0.
        let max_ones = zeros_a.min(zeros_b);
        let min_ones = (zeros_a + zeros_b).saturating_sub(k);
        // check symbol counts zeros of the output
        (k - max_ones, k - min_ones)
    }
}

/// Candidate code families for column-wise (homomorphic) PiM ECC surveyed in
/// §III-A / §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HomomorphicCandidate {
    /// Reed–Muller codes: additively and multiplicatively homomorphic.
    ReedMuller,
    /// Berger codes: homomorphic for NOT/addition-style operations only.
    Berger,
    /// AN / ANB / ANBD arithmetic codes: homomorphic for add/multiply only.
    ArithmeticAn,
    /// Residue codes: homomorphic for add/multiply only.
    Residue,
    /// Row-wise Hamming (the paper's choice, for contrast).
    RowWiseHamming,
}

/// Assessment of a candidate against the three column-wise criteria of
/// §III-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateAssessment {
    /// Candidate family.
    pub candidate: HomomorphicCandidate,
    /// Criterion 1: the output check symbols can be derived from the input
    /// check symbols alone for universal bitwise logic (NOR/NAND).
    pub bitwise_homomorphic: bool,
    /// Criterion 2: check-symbol storage is modest relative to the raw data
    /// (check bits per protected bit, lower is better).
    pub storage_overhead_bits_per_bit: f64,
    /// Criterion 3: cost of evaluating `f(c_a, c_b)` in equivalent Boolean
    /// gate operations per protected gate (lower is better).
    pub update_cost_gates_per_gate: f64,
    /// Whether the candidate satisfies all three criteria simultaneously.
    pub practical: bool,
}

/// Assesses a candidate for `k` protected bits per codeword.
///
/// The quantitative entries follow the paper's discussion: Reed–Muller
/// satisfies homomorphism but needs very long codewords (rate well below 1/2
/// for multiplicative homomorphism) and cyclic-convolution-style updates;
/// arithmetic codes are homomorphic only over add/multiply; Berger codes
/// support bitwise prediction only partially and their output check symbols
/// depend on the raw data, not only the input check symbols.
pub fn assess_candidate(candidate: HomomorphicCandidate, k: usize) -> CandidateAssessment {
    let kf = k.max(2) as f64;
    let log_k = kf.log2();
    match candidate {
        HomomorphicCandidate::ReedMuller => CandidateAssessment {
            candidate,
            bitwise_homomorphic: true,
            // RM(1, m) rate ~ (m+1)/2^m: storage blows up with word length.
            storage_overhead_bits_per_bit: kf / (log_k + 1.0),
            // element-wise multiplication of long codewords ~ O(k) gates per
            // protected gate, plus decoding.
            update_cost_gates_per_gate: kf,
            practical: false,
        },
        HomomorphicCandidate::Berger => CandidateAssessment {
            candidate,
            bitwise_homomorphic: false,
            storage_overhead_bits_per_bit: (log_k + 1.0) / kf,
            // Needs the raw data: equivalent to recomputing the zero count,
            // ~ k gates per update.
            update_cost_gates_per_gate: kf,
            practical: false,
        },
        HomomorphicCandidate::ArithmeticAn | HomomorphicCandidate::Residue => CandidateAssessment {
            candidate,
            bitwise_homomorphic: false,
            storage_overhead_bits_per_bit: log_k / kf,
            update_cost_gates_per_gate: log_k * log_k,
            practical: false,
        },
        HomomorphicCandidate::RowWiseHamming => CandidateAssessment {
            candidate,
            bitwise_homomorphic: false,
            storage_overhead_bits_per_bit: log_k / kf,
            // Up to (n-k) XORs, each 2 gate operations, per protected gate.
            update_cost_gates_per_gate: 2.0 * (log_k + 1.0),
            practical: true,
        },
    }
}

/// Assesses all surveyed candidates for `k` protected bits.
pub fn survey(k: usize) -> Vec<CandidateAssessment> {
    [
        HomomorphicCandidate::ReedMuller,
        HomomorphicCandidate::Berger,
        HomomorphicCandidate::ArithmeticAn,
        HomomorphicCandidate::Residue,
        HomomorphicCandidate::RowWiseHamming,
    ]
    .into_iter()
    .map(|c| assess_candidate(c, k))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn berger_check_bits() {
        assert_eq!(BergerCode::new(1).check_bits(), 1);
        assert_eq!(BergerCode::new(7).check_bits(), 3);
        assert_eq!(BergerCode::new(8).check_bits(), 4);
        assert_eq!(BergerCode::new(255).check_bits(), 8);
    }

    #[test]
    fn berger_check_symbol_counts_zeros() {
        let code = BergerCode::new(8);
        let data = BitVec::from_u64(0b1100_1010, 8);
        assert_eq!(code.check_symbol(&data), 4);
        assert!(code.verify(&data, 4));
        assert!(!code.verify(&data, 3));
    }

    #[test]
    fn berger_not_is_homomorphic() {
        let code = BergerCode::new(6);
        let data = BitVec::from_u64(0b101100, 6);
        let check = code.check_symbol(&data);
        let not_data: BitVec = data.iter().map(|b| !b).collect();
        assert_eq!(code.predict_not(check), code.check_symbol(&not_data));
    }

    #[test]
    fn berger_nor_is_not_homomorphic_but_range_brackets_truth() {
        let code = BergerCode::new(4);
        // Two different input pairs with identical check symbols but
        // different NOR check symbols: proves f(ca, cb) cannot exist.
        let a1 = BitVec::from_u64(0b0011, 4);
        let b1 = BitVec::from_u64(0b0011, 4);
        let a2 = BitVec::from_u64(0b0011, 4);
        let b2 = BitVec::from_u64(0b1100, 4);
        assert_eq!(code.check_symbol(&a1), code.check_symbol(&a2));
        assert_eq!(code.check_symbol(&b1), code.check_symbol(&b2));
        let nor = |a: &BitVec, b: &BitVec| -> BitVec {
            a.iter().zip(b.iter()).map(|(x, y)| !(x | y)).collect()
        };
        let c1 = code.check_symbol(&nor(&a1, &b1));
        let c2 = code.check_symbol(&nor(&a2, &b2));
        assert_ne!(c1, c2, "same input checks, different output checks");
        // Both truths fall inside the predicted range.
        let (lo, hi) = code.predict_nor_range(code.check_symbol(&a1), code.check_symbol(&b1));
        assert!(lo <= c1 && c1 <= hi);
        assert!(lo <= c2 && c2 <= hi);
    }

    #[test]
    fn survey_only_row_wise_hamming_is_practical() {
        let results = survey(247);
        let practical: Vec<_> = results.iter().filter(|r| r.practical).collect();
        assert_eq!(practical.len(), 1);
        assert_eq!(practical[0].candidate, HomomorphicCandidate::RowWiseHamming);
        // Reed-Muller is homomorphic but pays for it in storage and update cost.
        let rm = results
            .iter()
            .find(|r| r.candidate == HomomorphicCandidate::ReedMuller)
            .unwrap();
        assert!(rm.bitwise_homomorphic);
        assert!(rm.storage_overhead_bits_per_bit > 1.0);
        let hamming = practical[0];
        assert!(hamming.storage_overhead_bits_per_bit < 0.1);
        assert!(hamming.update_cost_gates_per_gate < rm.update_cost_gates_per_gate);
    }
}
