//! Campaign execution: schedule caching, deterministic per-trial seeding,
//! and the parallel Monte Carlo trial loop.
//!
//! Design invariants:
//!
//! * **Compile once, run many** — schedules are compiled per
//!   `(workload, row layout)` and shared (via [`Arc`]) by every trial of
//!   every point that uses that layout, instead of recompiling per trial.
//! * **Deterministic seeding** — each trial's input RNG and fault-injector
//!   RNG seeds are pure functions of `(campaign_seed, point index, trial
//!   index)`, so results do not depend on which thread ran the trial.
//! * **Order-independent aggregation** — trial outcomes are collected in
//!   plan order before aggregation, so the report is byte-identical for any
//!   thread count (`RAYON_NUM_THREADS=1` vs default).

use std::collections::HashMap;
use std::sync::Arc;

use nvpim_compiler::netlist::Netlist;
use nvpim_compiler::schedule::{map_netlist, RowSchedule};
use nvpim_core::config::DesignConfig;
use nvpim_core::executor::ProtectedExecutor;
use nvpim_core::system::{evaluate_schedule, WorkloadShape};
use nvpim_sim::array::PimArray;
use nvpim_sim::fault::{ErrorRates, FaultInjector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::plan::{ProtectionConfig, SweepPlan, SweepWorkload};
use crate::report::{PointSummary, SweepReport, TrialOutcome};
use crate::SweepError;

/// A compiled `(netlist, schedule)` pair shared by all trials of the
/// points that map onto the same row layout.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The workload's row netlist.
    pub netlist: Netlist,
    /// The schedule compiled for one specific row layout.
    pub schedule: RowSchedule,
}

/// Schedule-cache key: workload name plus the row layout's
/// `(total, metadata, cells_per_value)` columns.
type LayoutKey = (String, (usize, usize, usize));

/// Cache of compiled schedules keyed by `(workload, row layout)`.
///
/// Technologies never affect the layout, and distinct protection schemes
/// frequently share one (e.g. every technology's ECiM design), so a
/// campaign compiles far fewer schedules than it has points.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<LayoutKey, Arc<CompiledKernel>>,
    netlists: HashMap<String, Netlist>,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled schedules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the compiled kernel for `(workload, config.row_layout())`,
    /// compiling (and validating) it on first use.
    ///
    /// # Errors
    ///
    /// [`SweepError::Map`] when mapping fails outright and
    /// [`SweepError::NotDirectlyExecutable`] when the schedule spills (a
    /// spilled schedule cannot run on a single simulated row).
    pub fn get_or_compile(
        &mut self,
        workload: SweepWorkload,
        config: &DesignConfig,
    ) -> Result<Arc<CompiledKernel>, SweepError> {
        let layout = config.row_layout();
        let key = (
            workload.name(),
            (
                layout.total_columns,
                layout.metadata_columns,
                layout.cells_per_value,
            ),
        );
        if let Some(kernel) = self.entries.get(&key) {
            return Ok(Arc::clone(kernel));
        }
        // Netlist synthesis is itself cached: every layout of a workload
        // shares one netlist build.
        let netlist = self
            .netlists
            .entry(key.0.clone())
            .or_insert_with(|| workload.netlist())
            .clone();
        let schedule = map_netlist(&netlist, layout).map_err(|err| SweepError::Map {
            workload: workload.name(),
            detail: err.to_string(),
        })?;
        if !schedule.is_directly_executable() {
            return Err(SweepError::NotDirectlyExecutable {
                workload: workload.name(),
                layout_label: format!(
                    "{} cols, {} metadata, {} cells/value",
                    layout.total_columns, layout.metadata_columns, layout.cells_per_value
                ),
            });
        }
        let kernel = Arc::new(CompiledKernel { netlist, schedule });
        self.entries.insert(key, Arc::clone(&kernel));
        Ok(kernel)
    }
}

/// One fully-resolved campaign point, ready to run trials.
#[derive(Debug, Clone)]
pub(crate) struct PointContext {
    pub workload: SweepWorkload,
    pub protection: ProtectionConfig,
    pub config: DesignConfig,
    pub gate_error_rate: f64,
    pub kernel: Arc<CompiledKernel>,
    pub executor: Arc<ProtectedExecutor>,
    /// Analytic single-row time estimate (ns) from the system model.
    pub est_time_ns: f64,
    /// Analytic single-row energy estimate (fJ) from the system model.
    pub est_energy_fj: f64,
}

/// SplitMix64-style mix used for per-trial seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a trial's base seed from the campaign seed and its coordinates.
///
/// Pure function of its arguments — never of scheduling order.
pub fn derive_trial_seed(campaign_seed: u64, point_index: u64, trial_index: u64) -> u64 {
    mix(mix(campaign_seed ^ mix(point_index)) ^ trial_index)
}

/// Executes one Monte Carlo trial.
fn run_trial(ctx: &PointContext, base_seed: u64) -> TrialOutcome {
    // Independent streams for input generation and fault injection.
    let mut input_rng = ChaCha8Rng::seed_from_u64(mix(base_seed ^ 0x1));
    let fault_seed = mix(base_seed ^ 0x2);

    let netlist = &ctx.kernel.netlist;
    let inputs: Vec<bool> = (0..netlist.inputs.len())
        .map(|_| input_rng.gen_bool(0.5))
        .collect();
    let expected = netlist.evaluate(&inputs);

    let rates = ErrorRates {
        gate: ctx.gate_error_rate,
        ..ErrorRates::NONE
    };
    let mut array = PimArray::standard(ctx.config.technology)
        .with_fault_injector(FaultInjector::new(rates, fault_seed));

    match ctx
        .executor
        .run(netlist, &ctx.kernel.schedule, &mut array, 0, &inputs)
    {
        Ok(report) => {
            let wrong_bits = report
                .outputs
                .iter()
                .zip(&expected)
                .filter(|(got, want)| got != want)
                .count() as u64;
            TrialOutcome {
                faults_injected: array.fault_injector().fault_count() as u64,
                checks: report.checks,
                errors_detected: report.errors_detected,
                corrections_written_back: report.corrections_written_back,
                uncorrectable: report.uncorrectable,
                wrong_output_bits: wrong_bits,
                exec_error: None,
            }
        }
        Err(err) => TrialOutcome {
            faults_injected: array.fault_injector().fault_count() as u64,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: Some(err.to_string()),
        },
    }
}

/// Runs a full campaign: compiles each point's schedule once (shared via
/// the [`ScheduleCache`]), fans the trials out with rayon, and aggregates
/// outcomes into a deterministic [`SweepReport`].
///
/// # Errors
///
/// Plan-validation and schedule-compilation failures; individual trial
/// execution errors are *recorded* in the report rather than failing the
/// campaign.
pub fn run_campaign(plan: &SweepPlan) -> Result<SweepReport, SweepError> {
    plan.validate()?;

    // Phase 1 — resolve points and compile schedules (sequential, cached).
    let mut cache = ScheduleCache::new();
    let mut points: Vec<PointContext> = Vec::with_capacity(plan.point_count());
    for &workload in &plan.workloads {
        for &technology in &plan.technologies {
            for &protection in &plan.protections {
                let config = protection.design_config(technology);
                let kernel = cache.get_or_compile(workload, &config)?;
                let shape = WorkloadShape::new(workload.name(), 1, 1);
                let estimate = evaluate_schedule(&kernel.schedule, &shape, &config);
                let executor = Arc::new(ProtectedExecutor::new(config.clone()));
                for &gate_error_rate in &plan.gate_error_rates {
                    points.push(PointContext {
                        workload,
                        protection,
                        config: config.clone(),
                        gate_error_rate,
                        kernel: Arc::clone(&kernel),
                        executor: Arc::clone(&executor),
                        est_time_ns: estimate.time_ns,
                        est_energy_fj: estimate.energy_fj,
                    });
                }
            }
        }
    }

    // Phase 2 — expand and run every trial in parallel. The trial list is
    // in plan order and the rayon stub preserves order on collect, so the
    // outcome vector is identical for any thread count.
    let trials: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|pi| (0..plan.seeds_per_point).map(move |ti| (pi, ti)))
        .collect();
    let campaign_seed = plan.campaign_seed;
    let points_ref = &points;
    let outcomes: Vec<TrialOutcome> = trials
        .into_par_iter()
        .map(move |(pi, ti)| {
            let seed = derive_trial_seed(campaign_seed, pi as u64, ti);
            run_trial(&points_ref[pi], seed)
        })
        .collect();

    // Phase 3 — aggregate per point, in plan order.
    let per_point = plan.seeds_per_point as usize;
    let summaries: Vec<PointSummary> = points
        .iter()
        .enumerate()
        .map(|(pi, ctx)| {
            let chunk = &outcomes[pi * per_point..(pi + 1) * per_point];
            PointSummary::aggregate(ctx, chunk)
        })
        .collect();

    Ok(SweepReport::new(plan, summaries, cache.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_sim::technology::Technology;

    #[test]
    fn trial_seeds_are_stable_and_coordinate_sensitive() {
        assert_eq!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 2, 3));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 2, 4));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 3, 3));
        assert_ne!(derive_trial_seed(1, 2, 3), derive_trial_seed(2, 2, 3));
    }

    #[test]
    fn schedule_cache_shares_compilations_across_technologies() {
        let workload = SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        };
        let mut cache = ScheduleCache::new();
        let a = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::ECIM.design_config(Technology::SttMram),
            )
            .unwrap();
        let b = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::ECIM.design_config(Technology::ReRam),
            )
            .unwrap();
        // Same layout → the exact same Arc, not a recompilation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // A different layout compiles a second schedule.
        let c = cache
            .get_or_compile(
                workload,
                &ProtectionConfig::TRIM.design_config(Technology::SttMram),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn exec_error_trials_cannot_masquerade_as_success() {
        // A point whose trials all fail to execute must not report a
        // perfect output_error_rate — the rate's denominator counts only
        // executed trials, and exec_errors stays visible.
        let workload = SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        };
        let protection = ProtectionConfig::ECIM;
        let config = protection.design_config(Technology::SttMram);
        let mut cache = ScheduleCache::new();
        let kernel = cache.get_or_compile(workload, &config).unwrap();
        let ctx = PointContext {
            workload,
            protection,
            config: config.clone(),
            gate_error_rate: 1e-3,
            kernel,
            executor: Arc::new(ProtectedExecutor::new(config)),
            est_time_ns: 0.0,
            est_energy_fj: 0.0,
        };
        let broken = TrialOutcome {
            faults_injected: 0,
            checks: 0,
            errors_detected: 0,
            corrections_written_back: 0,
            uncorrectable: 0,
            wrong_output_bits: 0,
            exec_error: Some("array too small".into()),
        };
        let failed = TrialOutcome {
            wrong_output_bits: 2,
            exec_error: None,
            ..broken.clone()
        };

        // All trials broken: rate 0.0 but exec_errors == trials.
        let all_broken = PointSummary::aggregate(&ctx, &[broken.clone(), broken.clone()]);
        assert_eq!(all_broken.exec_errors, 2);
        assert_eq!(all_broken.failed_trials, 0);
        assert_eq!(all_broken.output_error_rate, 0.0);

        // Mixed: one executed-and-failed trial out of one executed trial
        // gives rate 1.0, not 1/3.
        let mixed = PointSummary::aggregate(&ctx, &[broken.clone(), broken, failed]);
        assert_eq!(mixed.exec_errors, 2);
        assert_eq!(mixed.failed_trials, 1);
        assert!((mixed.output_error_rate - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn campaign_reports_protection_efficacy() {
        // At a demanding error rate the unprotected baseline must fail
        // trials while ECiM/TRiM keep the output intact far more often.
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates = vec![1e-3];
        plan.seeds_per_point = 16;
        let report = run_campaign(&plan).unwrap();
        assert_eq!(report.points.len(), 3);
        let by_label = |label: &str| {
            report
                .points
                .iter()
                .find(|p| p.protection == label)
                .unwrap_or_else(|| panic!("missing point {label}"))
                .clone()
        };
        let unprotected = by_label("unprotected/m-o");
        let ecim = by_label("ECiM/m-o");
        let trim = by_label("TRiM/m-o");
        assert!(
            unprotected.failed_trials > 0,
            "unprotected baseline should corrupt some trials"
        );
        assert!(ecim.errors_detected > 0, "ECiM should detect faults");
        assert!(trim.errors_detected > 0, "TRiM should detect faults");
        assert!(ecim.failed_trials < unprotected.failed_trials);
        assert!(trim.failed_trials < unprotected.failed_trials);
        assert_eq!(report.total_trials, 48);
        // Three distinct layouts (unprotected, ECiM metadata, TRiM copies).
        assert_eq!(report.schedules_compiled, 3);
    }
}
