//! Regenerates Table III: the device/energy parameters of the three
//! nonvolatile PiM technologies.

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_sim::technology::Technology;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Table III — technology parameters\n");
    let params: Vec<_> = Technology::ALL.iter().map(|t| t.parameters()).collect();
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x}"));
    let rows: Vec<Vec<String>> = params
        .iter()
        .map(|p| {
            vec![
                p.technology.to_string(),
                format!("{}", p.r_low_kohm),
                format!("{}", p.r_high_kohm),
                fmt_opt(p.r_she_kohm),
                fmt_opt(p.critical_current_ua),
                fmt_opt(p.v_off),
                fmt_opt(p.v_on),
                format!("{}", p.t_switch_ns),
                format!("{}", p.nor_energy_fj),
                format!("{}", p.thr_energy_fj),
                format!("{}", p.write_energy_fj),
            ]
        })
        .collect();
    print_table(
        &[
            "technology",
            "R_low (kΩ)",
            "R_high (kΩ)",
            "R_SHE (kΩ)",
            "I_C (µA)",
            "V_OFF (V)",
            "V_ON (V)",
            "t_switch (ns)",
            "NOR (fJ)",
            "THR (fJ)",
            "write (fJ)",
        ],
        &rows,
    );
    if opts.json {
        print_json(&params);
    }
}
