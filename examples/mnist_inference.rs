//! MLP inference on protected PiM: runs the paper's two-layer, 64-hidden
//! neuron perceptron (with 2-bit quantized weights) over synthetic MNIST
//! images using the PiM gate-level netlists, validates the hidden-layer dot
//! products against the software reference, and prints the `mnist2`
//! benchmark's estimated protection overheads.
//!
//! Run with: `cargo run --release --example mnist_inference`

use nvpim::core::config::DesignConfig;
use nvpim::core::system::{compare, evaluate};
use nvpim::sim::technology::Technology;
use nvpim::workloads::mnist::{
    pack_row_inputs, row_netlist_with_terms, QuantizedMlp, SyntheticMnist, HIDDEN_NEURONS,
};
use nvpim::workloads::Benchmark;

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let weight_bits = 2usize;
    let dataset = SyntheticMnist::generate(4, 2024);
    let mlp = QuantizedMlp::generate(weight_bits, 99);

    // Behavioral (netlist-level) validation of the hidden layer on a reduced
    // chunk size: each PiM row computes a chunk of a neuron's dot product.
    let terms = 32usize;
    let netlist = row_netlist_with_terms(weight_bits, terms);
    println!(
        "per-row MLP chunk: {} MAC terms, {} NOR/THR gates, {} logic levels",
        terms,
        netlist.gate_count(),
        netlist.stats().depth
    );
    let image = &dataset.images[0];
    let mut validated = 0usize;
    for neuron in 0..4usize {
        let pixels = &image[..terms];
        let weights = &mlp.hidden_weights[neuron][..terms];
        let inputs = pack_row_inputs(pixels, weights, weight_bits);
        let out = from_bits(&netlist.evaluate(&inputs));
        let expected: u64 = pixels
            .iter()
            .zip(weights)
            .map(|(&p, &w)| p as u64 * w as u64)
            .sum();
        assert_eq!(out, expected, "neuron {neuron} chunk mismatch");
        validated += 1;
    }
    println!("validated {validated} hidden-neuron chunks against the software reference");

    // End-to-end reference inference over the synthetic dataset.
    for (idx, image) in dataset.images.iter().enumerate() {
        let class = mlp.infer(image);
        println!("image {idx}: predicted class {class}");
    }
    println!("(hidden layer: {HIDDEN_NEURONS} neurons, weights quantized to {weight_bits} bits)");

    // Paper-style overheads for the full mnist2 benchmark.
    let bench = Benchmark::Mnist { weight_bits };
    let full_netlist = bench.row_netlist();
    let shape = bench.shape();
    let tech = Technology::SttMram;
    let baseline = evaluate(&full_netlist, &shape, &DesignConfig::unprotected(tech))?;
    for cfg in [DesignConfig::ecim(tech), DesignConfig::trim(tech)] {
        let est = evaluate(&full_netlist, &shape, &cfg)?;
        let o = compare(&est, &baseline);
        println!(
            "{:<22} time overhead {:>5.1}%  energy overhead {:>6.2}x  reclaims {}",
            cfg.label(),
            o.time_overhead_pct,
            o.energy_overhead,
            o.reclaims
        );
    }
    Ok(())
}
