//! Offline stand-in for the real `rayon` crate.
//!
//! Implements the small parallel-iterator surface the workspace uses —
//! `into_par_iter()` / `par_iter()` → `map` → `collect` / `for_each` — on
//! top of `std::thread::scope`. Items are split into contiguous chunks, one
//! per worker thread, and results are reassembled **in input order**, so a
//! `collect::<Vec<_>>()` is byte-identical to the sequential result
//! regardless of thread count. The thread count honours the
//! `RAYON_NUM_THREADS` environment variable (like the real crate) and
//! otherwise uses the machine's available parallelism.

use std::ops::Range;

/// Number of worker threads used by parallel operations.
///
/// Reads `RAYON_NUM_THREADS` (values `< 1` are clamped to 1), falling back
/// to `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item, in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every item with per-worker state created by `init`
    /// (mirrors rayon's `map_init`): each worker thread calls `init()` once
    /// for its contiguous chunk and threads the value mutably through its
    /// items. Like the real crate, `init` may be called any number of times,
    /// so results must not depend on how items share state — reusable
    /// scratch buffers and arenas are the intended use.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, INIT, F>
    where
        S: Send,
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).collect::<Vec<()>>();
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let threads = current_num_threads().max(1);
        let len = self.items.len();
        if threads == 1 || len <= 1 {
            return self.items.into_iter().map(self.f).collect();
        }
        let chunk_size = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_size));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &self.f;
        let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for handle in handles {
                // Propagate worker panics, like real rayon.
                results.push(handle.join().expect("rayon stub: worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// A mapped parallel iterator with per-worker init state; consumed by
/// [`ParMapInit::collect`].
pub struct ParMapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T, S, U, INIT, F> ParMapInit<T, INIT, F>
where
    T: Send,
    S: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    /// Executes the map in parallel (one `init()` per worker chunk) and
    /// collects results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let threads = current_num_threads().max(1);
        let len = self.items.len();
        if threads == 1 || len <= 1 {
            let mut state = (self.init)();
            return self
                .items
                .into_iter()
                .map(|item| (self.f)(&mut state, item))
                .collect();
        }
        let chunk_size = len.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_size));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let init = &self.init;
        let f = &self.f;
        let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut state = init();
                        chunk
                            .into_iter()
                            .map(|item| f(&mut state, item))
                            .collect::<Vec<U>>()
                    })
                })
                .collect();
            for handle in handles {
                // Propagate worker panics, like real rayon.
                results.push(handle.join().expect("rayon stub: worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}
impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'data> {
    /// The produced (borrowed) item type.
    type Item: Send;
    /// Produces a parallel iterator borrowing from `self`.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = input.clone().into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_and_ref_iterators_work() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        let input: Vec<usize> = (0..5_000).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * 3).collect();
        let out: Vec<usize> = input
            .clone()
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, x| {
                // State must be reusable between items without leaking.
                scratch.clear();
                scratch.push(x);
                scratch[0] * 3
            })
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<()> = (0usize..64)
                .into_par_iter()
                .map(|i| {
                    if i == 63 {
                        panic!("boom");
                    }
                })
                .collect();
        });
        assert!(result.is_err());
    }
}
