//! Criterion benchmarks that time the regeneration of the paper's headline
//! artifacts themselves (the Fig. 7 / Table IV / Table V sweeps on the smoke
//! suite), so regressions in the evaluation pipeline are caught.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvpim_compiler::schedule::map_netlist;
use nvpim_core::config::DesignConfig;
use nvpim_core::system::{evaluate_schedule, WorkloadShape};
use nvpim_ecc::bch::BchCode;
use nvpim_sim::electrical::ElectricalModel;
use nvpim_sim::technology::Technology;
use nvpim_workloads::Benchmark;

fn bench_smoke_suite_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_sweep");
    group.sample_size(10);
    for bench in Benchmark::smoke_suite() {
        // Compile once per design outside the timed loop; the timed part is
        // the system model evaluation (what every table/figure row costs).
        let netlist = bench.row_netlist();
        let shape: WorkloadShape = bench.shape();
        let configs = [
            DesignConfig::unprotected(Technology::SttMram),
            DesignConfig::ecim(Technology::SttMram),
            DesignConfig::trim(Technology::SttMram),
        ];
        let schedules: Vec<_> = configs
            .iter()
            .map(|c| map_netlist(&netlist, c.row_layout()).expect("schedule fits"))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("estimate_three_designs", bench.name()),
            &schedules,
            |b, schedules| {
                b.iter(|| {
                    configs
                        .iter()
                        .zip(schedules)
                        .map(|(cfg, s)| evaluate_schedule(black_box(s), &shape, cfg).time_ns)
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

fn bench_fig8_and_fig9_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_models");
    group.bench_function("fig8_bch255_parity_sweep", |b| {
        b.iter(|| {
            (1..=10usize)
                .map(|t| BchCode::parity_bits_for(8, black_box(t)).unwrap())
                .sum::<usize>()
        })
    });
    group.bench_function("fig9_noise_margin_sweep", |b| {
        let model = ElectricalModel::new(Technology::SttMram);
        b.iter(|| model.figure9_sweep(black_box(10)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(800)).sample_size(20);
    targets = bench_smoke_suite_sweep, bench_fig8_and_fig9_models);
criterion_main!(benches);
