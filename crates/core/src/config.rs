//! Design-point configuration for protected PiM execution (§IV-B and §IV-F).

use nvpim_compiler::layout::RowLayout;
use nvpim_ecc::design_space::Granularity;
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::technology::Technology;
use serde::{Deserialize, Serialize, Value};

use crate::scheme::{registry, SchemeRuntime};

/// The protection scheme applied to in-memory computation: a copyable
/// handle to one entry of the compile-time scheme registry
/// (see [`crate::scheme`]).
///
/// The built-in handles keep their historical variant-style names
/// ([`ProtectionScheme::Unprotected`], [`ProtectionScheme::Ecim`],
/// [`ProtectionScheme::Trim`], plus the detection-only
/// [`ProtectionScheme::ParityDetect`]), so existing call sites read
/// unchanged — but every behaviour (geometry, run paths, cost model,
/// parsing, serialization) dispatches through the scheme's
/// [`SchemeRuntime`], never through a `match`.
#[derive(Clone, Copy)]
pub struct ProtectionScheme {
    runtime: &'static dyn SchemeRuntime,
}

#[allow(non_upper_case_globals)]
impl ProtectionScheme {
    /// No protection (the iso-area baseline).
    pub const Unprotected: ProtectionScheme = ProtectionScheme {
        runtime: &crate::schemes::unprotected::UnprotectedScheme,
    };
    /// Hamming-code parity maintained in memory, checked by an external
    /// Checker at logic-level granularity (the paper's ECiM).
    pub const Ecim: ProtectionScheme = ProtectionScheme {
        runtime: &crate::schemes::ecim::EcimScheme,
    };
    /// Triple redundant computation in memory, majority-voted by an external
    /// Checker at logic-level granularity (the paper's TRiM).
    pub const Trim: ProtectionScheme = ProtectionScheme {
        runtime: &crate::schemes::trim::TrimScheme,
    };
    /// Detection-only even parity with detect-and-retry accounting (the
    /// SECDED-style regime; see [`crate::schemes::parity_detect`]).
    pub const ParityDetect: ProtectionScheme = ProtectionScheme {
        runtime: &crate::schemes::parity_detect::ParityDetectScheme,
    };
    /// Parity detection with bounded software recompute of the affected
    /// logic level and verified write-back (see
    /// [`crate::schemes::detect_recompute`]).
    pub const DetectRecompute: ProtectionScheme = ProtectionScheme {
        runtime: &crate::schemes::detect_recompute::DetectRecomputeScheme,
    };

    /// The scheme's runtime — the single dispatch point for everything that
    /// was once a `match scheme` arm.
    pub fn runtime(&self) -> &'static dyn SchemeRuntime {
        self.runtime
    }

    /// Stable serialized name (`"Ecim"`, what plan JSON carries).
    pub fn wire_name(&self) -> &'static str {
        self.runtime.wire_name()
    }

    /// Human-readable display label (`"ECiM"`), allocation-free.
    pub fn name(&self) -> &'static str {
        self.runtime.display_name()
    }

    /// Every registered scheme, in stable registry (wire) order.
    pub fn all() -> impl Iterator<Item = ProtectionScheme> {
        registry()
            .iter()
            .map(|&runtime| ProtectionScheme { runtime })
    }
}

impl PartialEq for ProtectionScheme {
    fn eq(&self, other: &Self) -> bool {
        // Wire names are unique per registry entry (asserted by the
        // registry-completeness tests), so identity is name identity.
        self.wire_name() == other.wire_name()
    }
}

impl Eq for ProtectionScheme {}

impl std::hash::Hash for ProtectionScheme {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.wire_name().hash(state);
    }
}

impl std::fmt::Debug for ProtectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl std::fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serializes as the bare wire name (`"Ecim"`), byte-identical to the
/// closed enum this handle replaced.
impl Serialize for ProtectionScheme {
    fn to_json(&self) -> Value {
        Value::Str(self.wire_name().to_string())
    }
}

impl Deserialize for ProtectionScheme {}

/// Accepts the wire name (`"Ecim"`), the display label (`"ECiM"`) and any
/// registered alias — for every scheme in the registry, including ones
/// added after this crate shipped.
impl std::str::FromStr for ProtectionScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::scheme::lookup(s)
            .map(|runtime| ProtectionScheme { runtime })
            .ok_or_else(|| {
                let known: Vec<&str> = registry().iter().map(|r| r.wire_name()).collect();
                format!(
                    "unknown protection scheme `{s}` (expected one of {})",
                    known.join(", ")
                )
            })
    }
}

/// Which Monte Carlo simulation backend executes trials.
///
/// Both backends produce **byte-identical** reports — the sliced backend's
/// per-lane fault streams replay each trial's exact scalar seeds — so this
/// is purely a throughput knob (and a falsification lever for the
/// equivalence test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimBackend {
    /// One trial at a time on the scalar bit-packed array.
    Scalar,
    /// Up to 64 trials at once, one per `u64` lane, on the transposed
    /// bit-sliced array (the default wherever the point is sliceable).
    Sliced,
}

// Not a `#[derive(Default)]` + `#[default]` variant attribute: the offline
// stub `serde_derive` parser does not understand variant attributes.
#[allow(clippy::derivable_impls)]
impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::Sliced
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimBackend::Scalar => write!(f, "scalar"),
            SimBackend::Sliced => write!(f, "sliced"),
        }
    }
}

/// Accepts the lowercase display label and the serialized variant name.
impl std::str::FromStr for SimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" | "Scalar" => Ok(SimBackend::Scalar),
            "sliced" | "Sliced" => Ok(SimBackend::Sliced),
            other => Err(format!(
                "unknown simulation backend `{other}` (expected scalar or sliced)"
            )),
        }
    }
}

/// Whether redundant outputs (parity copies, redundant computation results)
/// are produced by multi-output gates in one shot or by separate
/// single-output gate operations (Table V's `m-o` vs `s-o` columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateStyle {
    /// Multi-output gates (NOR22 / 3-output NOR).
    MultiOutput,
    /// Single-output gates only; copies are produced by extra operations.
    SingleOutput,
}

impl std::fmt::Display for GateStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateStyle::MultiOutput => write!(f, "m-o"),
            GateStyle::SingleOutput => write!(f, "s-o"),
        }
    }
}

/// Accepts the serialized variant name (`"MultiOutput"`, the JSON wire
/// format) and the display label (`"m-o"`).
impl std::str::FromStr for GateStyle {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "MultiOutput" | "m-o" => Ok(GateStyle::MultiOutput),
            "SingleOutput" | "s-o" => Ok(GateStyle::SingleOutput),
            other => Err(format!(
                "unknown gate style `{other}` (expected MultiOutput or SingleOutput)"
            )),
        }
    }
}

/// A complete design point: scheme, gate style, technology, code parameters
/// and the array organization of §V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Protection scheme.
    pub scheme: ProtectionScheme,
    /// Multi- or single-output metadata generation.
    pub gate_style: GateStyle,
    /// PiM technology.
    pub technology: Technology,
    /// Error-check granularity (the proposed designs use
    /// [`Granularity::LogicLevel`]).
    pub check_granularity: Granularity,
    /// Hamming code parity bits `r` (the code is `Hamming(2^r − 1, 2^r − 1 − r)`;
    /// the paper uses `r = 8`, i.e. Hamming(255, 247)).
    pub hamming_r: usize,
    /// When non-zero, shorten the Hamming code to exactly this many data
    /// bits (the code becomes `Hamming(k + r, k)` with the minimum `r`
    /// covering `k`). `0` selects the full-length code from `hamming_r`.
    /// Example: `64` gives Hamming(71, 64), the word-oriented design point
    /// benchmarked by `trial_throughput`.
    pub hamming_k: usize,
    /// Columns per PiM array row (256 in the paper).
    pub array_columns: usize,
    /// Rows per PiM array (256 in the paper).
    pub array_rows: usize,
    /// Maximum number of arrays in the fleet (16 in the paper).
    pub max_arrays: usize,
    /// Number of independent parity blocks per side (left/right) available
    /// for pipelining ECiM parity updates (§IV-C).
    pub parity_blocks_per_side: usize,
    /// Number of partitions that can preset recycled cells concurrently
    /// during an area reclaim.
    pub reclaim_parallelism: usize,
}

impl DesignConfig {
    /// The unprotected iso-area baseline for `technology`.
    pub fn unprotected(technology: Technology) -> Self {
        Self {
            scheme: ProtectionScheme::Unprotected,
            gate_style: GateStyle::MultiOutput,
            technology,
            check_granularity: Granularity::LogicLevel,
            hamming_r: 8,
            hamming_k: 0,
            array_columns: 256,
            array_rows: 256,
            max_arrays: 16,
            parity_blocks_per_side: 4,
            reclaim_parallelism: 16,
        }
    }

    /// ECiM with multi-output gates (the paper's primary design point).
    pub fn ecim(technology: Technology) -> Self {
        Self {
            scheme: ProtectionScheme::Ecim,
            ..Self::unprotected(technology)
        }
    }

    /// TRiM with multi-output gates.
    pub fn trim(technology: Technology) -> Self {
        Self {
            scheme: ProtectionScheme::Trim,
            ..Self::unprotected(technology)
        }
    }

    /// The paper's standard design point under an arbitrary registered
    /// scheme — the open-ended constructor behind the sweep planner and the
    /// facade builder (no per-scheme constructor needed to run a new
    /// scheme).
    pub fn for_scheme(scheme: ProtectionScheme, technology: Technology) -> Self {
        Self {
            scheme,
            ..Self::unprotected(technology)
        }
    }

    /// Returns a copy using single-output gates.
    pub fn with_single_output_gates(mut self) -> Self {
        self.gate_style = GateStyle::SingleOutput;
        self
    }

    /// Returns a copy using the given check granularity.
    pub fn with_check_granularity(mut self, granularity: Granularity) -> Self {
        self.check_granularity = granularity;
        self
    }

    /// Returns a copy using a `Hamming(2^r − 1, ...)` code with the given `r`.
    pub fn with_hamming_r(mut self, r: usize) -> Self {
        self.hamming_r = r;
        self.hamming_k = 0;
        self
    }

    /// Returns a copy using a shortened Hamming code with exactly `k` data
    /// bits and the minimum covering number of parity bits (e.g. `k = 64`
    /// gives Hamming(71, 64)).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_hamming_data_bits(mut self, k: usize) -> Self {
        assert!(k > 0, "a Hamming code needs at least one data bit");
        let mut r = 2usize;
        while (1usize << r) - 1 - r < k {
            r += 1;
        }
        self.hamming_r = r;
        self.hamming_k = k;
        self
    }

    /// Number of Hamming parity bits (`n − k`).
    pub fn parity_bits(&self) -> usize {
        self.hamming_r
    }

    /// Number of data bits `k` of the configured Hamming code.
    pub fn data_bits(&self) -> usize {
        if self.hamming_k != 0 {
            self.hamming_k
        } else {
            (1usize << self.hamming_r) - 1 - self.hamming_r
        }
    }

    /// Constructs the Hamming code this design point maintains in memory.
    pub fn hamming_code(&self) -> HammingCode {
        if self.hamming_k != 0 {
            HammingCode::with_data_bits(self.hamming_k)
                .expect("hamming_k validated at construction")
        } else {
            HammingCode::new_standard(self.hamming_r)
        }
    }

    /// Columns reserved in every row for the scheme's metadata under this
    /// design (running parity cells, working cells, redundant copies) —
    /// delegated to the scheme runtime.
    pub fn metadata_columns(&self) -> usize {
        self.scheme.runtime().metadata_columns(self)
    }

    /// Cells each computed value occupies in the scratch region — delegated
    /// to the scheme runtime (3 for triple-redundant TRiM).
    pub fn cells_per_value(&self) -> usize {
        self.scheme.runtime().cells_per_value()
    }

    /// The row layout induced by this design under the iso-area constraint.
    pub fn row_layout(&self) -> RowLayout {
        RowLayout {
            total_columns: self.array_columns,
            metadata_columns: self.metadata_columns(),
            cells_per_value: self.cells_per_value(),
        }
    }

    /// The scheme's display name (`"ECiM"`) without allocating.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Short human-readable label, e.g. `"ECiM/m-o/STT-MRAM"`. Allocates;
    /// per-point paths should build the label once and cache it (the sweep
    /// engine's `PointContext` does).
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.scheme_name(),
            self.gate_style,
            self.technology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper_setup() {
        let c = DesignConfig::ecim(Technology::SttMram);
        assert_eq!(c.array_columns, 256);
        assert_eq!(c.array_rows, 256);
        assert_eq!(c.max_arrays, 16);
        assert_eq!(c.hamming_r, 8);
        assert_eq!(c.data_bits(), 247);
        assert_eq!(c.parity_bits(), 8);
        assert_eq!(c.check_granularity, Granularity::LogicLevel);
    }

    #[test]
    fn layouts_reflect_scheme_metadata() {
        let unprot = DesignConfig::unprotected(Technology::ReRam).row_layout();
        assert_eq!(unprot.metadata_columns, 0);
        assert_eq!(unprot.cells_per_value, 1);

        let ecim = DesignConfig::ecim(Technology::ReRam).row_layout();
        assert!(ecim.metadata_columns > 0);
        assert_eq!(ecim.cells_per_value, 1);
        assert!(ecim.value_capacity() < unprot.value_capacity());

        let trim = DesignConfig::trim(Technology::ReRam).row_layout();
        assert_eq!(trim.metadata_columns, 0);
        assert_eq!(trim.cells_per_value, 3);
        // TRiM's metadata pressure is larger than ECiM's (Table IV).
        assert!(trim.value_capacity() < ecim.value_capacity());
    }

    #[test]
    fn builder_style_modifiers() {
        let c = DesignConfig::trim(Technology::SotSheMram)
            .with_single_output_gates()
            .with_hamming_r(4);
        assert_eq!(c.gate_style, GateStyle::SingleOutput);
        assert_eq!(c.data_bits(), 11);
        assert_eq!(c.label(), "TRiM/s-o/SOT-MRAM");
    }
}
