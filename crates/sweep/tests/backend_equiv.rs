//! Backend equivalence: the sliced (64-trials-per-`u64`-lane) backend must
//! be observationally indistinguishable from the scalar reference backend —
//! per-trial outcomes, per-trial fault streams and whole-campaign
//! `SweepReport` bytes — across a grid of technologies, protection schemes
//! and error rates, including ragged batch tails (trial counts that are not
//! multiples of 64). Thread-count invariance lives in `determinism.rs`
//! (the one test file allowed to mutate `RAYON_NUM_THREADS`).

use nvpim_sim::technology::Technology;
use nvpim_sweep::{
    run_campaign_with_backend, CampaignKind, EstimatorMode, ProtectionConfig, SimBackend,
    SweepPlan, SweepWorkload, TrialArena, TrialHarness, TrialOutcome,
};

const SEED: u64 = 0x51_1CED;

fn mac() -> SweepWorkload {
    SweepWorkload::Mac {
        acc_bits: 8,
        mul_bits: 4,
    }
}

fn both_backends(plan: &SweepPlan) -> (String, String) {
    let scalar = run_campaign_with_backend(plan, SimBackend::Scalar)
        .expect("scalar campaign runs")
        .to_json();
    let sliced = run_campaign_with_backend(plan, SimBackend::Sliced)
        .expect("sliced campaign runs")
        .to_json();
    (scalar, sliced)
}

#[test]
fn reports_are_byte_identical_across_the_technology_scheme_rate_grid() {
    // Every technology × every protection design point (both gate styles)
    // × two error rates. 20 seeds per point is deliberately not a multiple
    // of 64, so every point ends in a ragged lane batch.
    let plan = SweepPlan {
        workloads: vec![mac()],
        technologies: Technology::ALL.to_vec(),
        protections: vec![
            ProtectionConfig::UNPROTECTED,
            ProtectionConfig::ECIM,
            ProtectionConfig::ECIM_SINGLE_OUTPUT,
            ProtectionConfig::TRIM,
            ProtectionConfig::TRIM_SINGLE_OUTPUT,
        ],
        gate_error_rates: vec![3e-4, 2e-3],
        seeds_per_point: 20,
        campaign_seed: SEED,
        estimator: EstimatorMode::Exact,
        kind: CampaignKind::Error,
        stuck_at_rate: 0.0,
    };
    let (scalar, sliced) = both_backends(&plan);
    assert_eq!(scalar, sliced, "grid reports must be byte-identical");
    assert!(
        scalar.contains("\"faults_injected\""),
        "report shape sanity check"
    );
}

#[test]
fn ragged_trial_counts_are_byte_identical() {
    // 100 = 64 + 36 and 129 = 2×64 + 1: both tails exercise partial lane
    // masks; 129 additionally exercises a single-lane batch.
    for seeds_per_point in [100u64, 129] {
        let plan = SweepPlan {
            workloads: vec![mac()],
            technologies: vec![Technology::SttMram],
            protections: ProtectionConfig::paper_trio(),
            gate_error_rates: vec![1e-3],
            seeds_per_point,
            campaign_seed: SEED ^ seeds_per_point,
            estimator: EstimatorMode::Exact,
            kind: CampaignKind::Error,
            stuck_at_rate: 0.0,
        };
        let (scalar, sliced) = both_backends(&plan);
        assert_eq!(
            scalar, sliced,
            "{seeds_per_point} trials/point must not depend on the backend"
        );
    }
}

#[test]
fn batch_outcomes_equal_scalar_outcomes_trial_for_trial() {
    // Below the report aggregation: the raw TrialOutcome structs —
    // including per-trial fault counts — must match for every batch width.
    let harness = TrialHarness::new(
        mac(),
        ProtectionConfig::ECIM,
        ProtectionConfig::ECIM.design_config(Technology::SttMram),
        1e-3,
    )
    .expect("point compiles");
    let mut arena = TrialArena::new();
    let scalar: Vec<TrialOutcome> = (0..129)
        .map(|t| harness.run_trial(SEED, t, &mut arena))
        .collect();
    for widths in [vec![64usize, 64, 1], vec![5, 60, 64], vec![1; 129]] {
        let mut sliced: Vec<TrialOutcome> = Vec::new();
        let mut next = 0u64;
        for w in widths.iter().copied() {
            sliced.extend(harness.run_trial_batch(SEED, next, w, &mut arena));
            next += w as u64;
        }
        assert_eq!(next, 129);
        assert_eq!(sliced, scalar, "batch shape {widths:?}");
    }
    assert!(
        scalar.iter().any(|o| o.faults_injected > 0),
        "this regime must inject faults"
    );
}

#[test]
fn one_arena_serves_sliced_batches_of_interleaved_points() {
    // The sliced arena-purity contract: one TrialBatch reused across
    // batches of different points (technology, scheme, Hamming code) must
    // reproduce fresh-arena results bit for bit.
    let points = [
        TrialHarness::new(
            mac(),
            ProtectionConfig::ECIM,
            ProtectionConfig::ECIM.design_config(Technology::SttMram),
            1e-3,
        )
        .unwrap(),
        TrialHarness::new(
            mac(),
            ProtectionConfig::TRIM,
            ProtectionConfig::TRIM.design_config(Technology::ReRam),
            3e-4,
        )
        .unwrap(),
        TrialHarness::new(
            mac(),
            ProtectionConfig::ECIM,
            ProtectionConfig::ECIM
                .design_config(Technology::SotSheMram)
                .with_hamming_data_bits(64), // Hamming(71, 64)
            1e-4,
        )
        .unwrap(),
    ];
    let mut shared = TrialArena::new();
    let mut interleaved: Vec<Vec<TrialOutcome>> = vec![Vec::new(); points.len()];
    for round in 0..3u64 {
        for (pi, h) in points.iter().enumerate() {
            interleaved[pi].extend(h.run_trial_batch(SEED, round * 64, 64, &mut shared));
        }
    }
    for (pi, h) in points.iter().enumerate() {
        let mut fresh_outcomes = Vec::new();
        for round in 0..3u64 {
            let mut fresh = TrialArena::new();
            fresh_outcomes.extend(h.run_trial_batch(SEED, round * 64, 64, &mut fresh));
        }
        assert_eq!(
            interleaved[pi], fresh_outcomes,
            "point {pi} must be unaffected by arena sharing"
        );
    }
}

#[test]
fn extreme_error_rates_stay_equivalent() {
    // p = 0 (no faults, no RNG) and p = 1 (every gate output flips, no
    // RNG) take special paths in both samplers; they must still agree.
    for rate in [0.0, 1.0] {
        let plan = SweepPlan {
            workloads: vec![mac()],
            technologies: vec![Technology::SttMram],
            protections: ProtectionConfig::paper_trio(),
            gate_error_rates: vec![rate],
            seeds_per_point: 7,
            campaign_seed: SEED,
            estimator: EstimatorMode::Exact,
            kind: CampaignKind::Error,
            stuck_at_rate: 0.0,
        };
        let (scalar, sliced) = both_backends(&plan);
        assert_eq!(scalar, sliced, "rate {rate}");
    }
}
