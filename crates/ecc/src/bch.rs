//! Binary primitive BCH codes, the multi-error extension of ECiM (§VI,
//! "Extension to Higher-Coverage Codes" and Fig. 8 of the paper).
//!
//! A `BCH(n = 2^m − 1, k, t)` code corrects up to `t` bit errors per
//! codeword using `n − k = deg g(x)` parity bits, where `g(x)` is the least
//! common multiple of the minimal polynomials of `α, α², …, α^{2t}`.
//! ECiM maintains these parity bits in memory exactly like Hamming parity
//! bits — only the per-data-bit update mask (a column of the non-identity
//! part of `G`) changes — so the paper's Fig. 8 reduces to the parity-bit
//! count of BCH-255 as a function of `t`, which
//! [`BchCode::parity_bits_for`] reproduces exactly.
//!
//! # Examples
//!
//! ```
//! use nvpim_ecc::bch::BchCode;
//! use nvpim_ecc::gf2::BitVec;
//!
//! let code = BchCode::new(8, 2).unwrap(); // BCH(255, 239), corrects 2 errors
//! assert_eq!(code.n(), 255);
//! assert_eq!(code.parity_bits(), 16);
//!
//! let data = BitVec::zeros(code.k());
//! let mut cw = code.encode(&data);
//! cw.flip(3);
//! cw.flip(200);
//! let corrected = code.decode(&mut cw).unwrap();
//! assert_eq!(corrected, 2);
//! assert_eq!(code.extract_data(&cw), data);
//! ```

use std::fmt;

use crate::error::EccError;
use crate::gf2::{BitMatrix, BitVec};
use crate::gf2m::{poly_mul_gf2, Gf2m};

/// A binary primitive BCH code over GF(2^m) with design error-correction
/// capability `t`.
#[derive(Clone)]
pub struct BchCode {
    field: Gf2m,
    n: usize,
    k: usize,
    t: usize,
    /// Generator polynomial coefficients, little-endian over GF(2).
    generator: Vec<u8>,
    /// Parity-update masks: for data bit `j`, the parity bits toggled when it
    /// flips (the remainder of `x^{n-k+j}` modulo `g(x)`).
    update_masks: Vec<BitVec>,
}

impl fmt::Debug for BchCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BchCode")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("t", &self.t)
            .finish()
    }
}

impl BchCode {
    /// Constructs the primitive BCH code of length `n = 2^m − 1` correcting
    /// `t` errors.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] if `m` is outside `3..=16`,
    /// `t == 0`, or `t` is so large that no data bits remain.
    pub fn new(m: usize, t: usize) -> Result<Self, EccError> {
        if !(3..=16).contains(&m) {
            return Err(EccError::InvalidParameters(format!(
                "BCH requires 3 <= m <= 16, got m={m}"
            )));
        }
        if t == 0 {
            return Err(EccError::InvalidParameters(
                "BCH requires t >= 1 correctable errors".into(),
            ));
        }
        let field = Gf2m::new(m)?;
        let n = field.order();
        let generator = Self::generator_poly(&field, t);
        let parity = generator.len() - 1;
        if parity >= n {
            return Err(EccError::InvalidParameters(format!(
                "t={t} leaves no data bits for n={n}"
            )));
        }
        let k = n - parity;
        let update_masks = (0..k)
            .map(|j| {
                // remainder of x^{parity + j} mod g(x)
                let mut poly = vec![0u8; parity + j + 1];
                poly[parity + j] = 1;
                let rem = poly_mod_gf2(&poly, &generator);
                let mut mask = BitVec::zeros(parity);
                for (i, &bit) in rem.iter().enumerate() {
                    if bit == 1 {
                        mask.set(i, true);
                    }
                }
                mask
            })
            .collect();
        Ok(Self {
            field,
            n,
            k,
            t,
            generator,
            update_masks,
        })
    }

    /// Number of parity bits a BCH code of length `2^m − 1` needs to correct
    /// `t` errors. This is the quantity plotted in Fig. 8 (for `m = 8`,
    /// BCH-255).
    ///
    /// # Errors
    ///
    /// Propagates the constructor's parameter validation.
    pub fn parity_bits_for(m: usize, t: usize) -> Result<usize, EccError> {
        if !(3..=16).contains(&m) {
            return Err(EccError::InvalidParameters(format!(
                "BCH requires 3 <= m <= 16, got m={m}"
            )));
        }
        if t == 0 {
            return Err(EccError::InvalidParameters(
                "BCH requires t >= 1 correctable errors".into(),
            ));
        }
        let field = Gf2m::new(m)?;
        Ok(Self::generator_poly(&field, t).len() - 1)
    }

    /// Builds the generator polynomial as the LCM of the minimal polynomials
    /// of `α, α², …, α^{2t}`.
    fn generator_poly(field: &Gf2m, t: usize) -> Vec<u8> {
        let mut covered = vec![false; field.order() + 1];
        let mut generator = vec![1u8];
        for i in 1..=(2 * t) {
            let exp = i % field.order();
            if exp == 0 || covered[exp] {
                continue;
            }
            // Cyclotomic coset of `exp` modulo 2^m - 1.
            let mut coset = Vec::new();
            let mut e = exp;
            loop {
                if covered[e] {
                    break;
                }
                covered[e] = true;
                coset.push(e);
                e = (e * 2) % field.order();
                if e == exp {
                    break;
                }
            }
            if coset.is_empty() {
                continue;
            }
            // Minimal polynomial = prod (x - alpha^j) for j in coset,
            // computed over GF(2^m); coefficients collapse to GF(2).
            let mut min_poly: Vec<u32> = vec![1];
            for &j in &coset {
                let root = field.alpha_pow(j as i64);
                // multiply min_poly by (x + root)
                let mut next = vec![0u32; min_poly.len() + 1];
                for (idx, &c) in min_poly.iter().enumerate() {
                    next[idx + 1] ^= c; // c * x
                    next[idx] = field.add(next[idx], field.mul(c, root));
                }
                min_poly = next;
            }
            let min_poly_gf2: Vec<u8> = min_poly
                .iter()
                .map(|&c| {
                    debug_assert!(c <= 1, "minimal polynomial coefficient not in GF(2)");
                    c as u8
                })
                .collect();
            generator = poly_mul_gf2(&generator, &min_poly_gf2);
        }
        generator
    }

    /// Codeword length `n = 2^m − 1`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data bits `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Designed error-correction capability `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of parity bits `n − k`.
    pub fn parity_bits(&self) -> usize {
        self.n - self.k
    }

    /// Generator polynomial coefficients (little-endian, over GF(2)).
    pub fn generator(&self) -> &[u8] {
        &self.generator
    }

    /// For data bit `j`, the parity bits that must be toggled when it flips.
    /// This generalizes [`crate::hamming::HammingCode::parity_update_mask`]
    /// and is what ECiM's in-memory pipeline would maintain for BCH coverage.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    pub fn parity_update_mask(&self, j: usize) -> &BitVec {
        assert!(j < self.k, "data bit {j} out of range {}", self.k);
        &self.update_masks[j]
    }

    /// The non-identity part of the systematic generator matrix
    /// (`(n−k) × k`), analogous to the Hamming `A` matrix.
    pub fn a_matrix(&self) -> BitMatrix {
        let mut a = BitMatrix::zeros(self.parity_bits(), self.k);
        for j in 0..self.k {
            let mask = &self.update_masks[j];
            for i in 0..self.parity_bits() {
                if mask.get(i) {
                    a.set(i, j, true);
                }
            }
        }
        a
    }

    /// Encodes `data` into a systematic codeword laid out `[data | parity]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.k, "data length must equal k = {}", self.k);
        let mut parity = BitVec::zeros(self.parity_bits());
        for j in 0..self.k {
            if data.get(j) {
                parity.xor_assign(&self.update_masks[j]);
            }
        }
        data.concat(&parity)
    }

    /// Computes the `2t` syndromes `S_i = r(α^i)` of a received word.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn syndromes(&self, codeword: &BitVec) -> Vec<u32> {
        assert_eq!(
            codeword.len(),
            self.n,
            "codeword length must equal n = {}",
            self.n
        );
        // Received polynomial r(x): coefficient of x^i is bit i of the
        // codeword in *polynomial* layout. Our systematic layout is
        // [data | parity] where data bit j corresponds to x^{parity + j} and
        // parity bit i to x^i.
        let parity = self.parity_bits();
        (1..=2 * self.t)
            .map(|i| {
                let alpha_i = self.field.alpha_pow(i as i64);
                let mut acc = 0u32;
                // Word-level scan: only set bits contribute to r(α^i).
                for pos in codeword.iter_ones() {
                    let poly_deg = if pos < self.k {
                        parity + pos
                    } else {
                        pos - self.k
                    };
                    acc = self
                        .field
                        .add(acc, self.field.pow(alpha_i, poly_deg as u64));
                }
                acc
            })
            .collect()
    }

    /// Decodes and corrects `codeword` in place, returning the number of
    /// corrected bit errors.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::Uncorrectable`] if more than `t` errors are
    /// present (detected via Berlekamp–Massey failure or an inconsistent
    /// Chien search).
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn decode(&self, codeword: &mut BitVec) -> Result<usize, EccError> {
        let syndromes = self.syndromes(codeword);
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let num_errors = sigma.len() - 1;
        if num_errors > self.t {
            return Err(EccError::Uncorrectable {
                errors_found: num_errors,
                capability: self.t,
            });
        }
        // Chien search: roots of sigma are alpha^{-loc} for error locations.
        let mut error_positions = Vec::new();
        for loc in 0..self.n {
            let x = self.field.alpha_pow(-(loc as i64));
            if self.field.poly_eval(&sigma, x) == 0 {
                error_positions.push(loc);
            }
        }
        if error_positions.len() != num_errors {
            return Err(EccError::Uncorrectable {
                errors_found: error_positions.len().max(num_errors),
                capability: self.t,
            });
        }
        let parity = self.parity_bits();
        for &poly_deg in &error_positions {
            // Map the polynomial degree back to the systematic layout index.
            let pos = if poly_deg >= parity {
                poly_deg - parity
            } else {
                self.k + poly_deg
            };
            codeword.flip(pos);
        }
        // Verify.
        if self.syndromes(codeword).iter().any(|&s| s != 0) {
            return Err(EccError::Uncorrectable {
                errors_found: error_positions.len(),
                capability: self.t,
            });
        }
        Ok(error_positions.len())
    }

    /// Extracts the data bits from a systematic codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn extract_data(&self, codeword: &BitVec) -> BitVec {
        assert_eq!(
            codeword.len(),
            self.n,
            "codeword length must equal n = {}",
            self.n
        );
        codeword.slice(0..self.k)
    }

    /// Berlekamp–Massey: returns the error-locator polynomial σ(x)
    /// (little-endian coefficients in GF(2^m)).
    fn berlekamp_massey(&self, syndromes: &[u32]) -> Vec<u32> {
        let f = &self.field;
        let mut sigma: Vec<u32> = vec![1];
        let mut b: Vec<u32> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u32;
        for n in 0..syndromes.len() {
            // discrepancy
            let mut d = syndromes[n];
            for i in 1..=l {
                if i < sigma.len() {
                    d = f.add(d, f.mul(sigma[i], syndromes[n - i]));
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t = sigma.clone();
                let coef = f.div(d, bb);
                sigma = poly_add_scaled_shifted(f, &sigma, &b, coef, m);
                l = n + 1 - l;
                b = t;
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb);
                sigma = poly_add_scaled_shifted(f, &sigma, &b, coef, m);
                m += 1;
            }
        }
        sigma.truncate(l + 1);
        sigma
    }
}

/// Returns `a(x) + coef · x^shift · b(x)` over GF(2^m).
fn poly_add_scaled_shifted(f: &Gf2m, a: &[u32], b: &[u32], coef: u32, shift: usize) -> Vec<u32> {
    let len = a.len().max(b.len() + shift);
    let mut out = vec![0u32; len];
    out[..a.len()].copy_from_slice(a);
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] = f.add(out[i + shift], f.mul(coef, bi));
    }
    out
}

/// Remainder of polynomial division over GF(2) (coefficients little-endian).
fn poly_mod_gf2(dividend: &[u8], divisor: &[u8]) -> Vec<u8> {
    let deg_divisor = divisor.len() - 1;
    let mut rem = dividend.to_vec();
    while rem.len() > deg_divisor {
        let lead = rem.len() - 1;
        if rem[lead] == 1 {
            let shift = lead - deg_divisor;
            for (i, &d) in divisor.iter().enumerate() {
                rem[shift + i] ^= d;
            }
        }
        rem.pop();
    }
    rem.resize(deg_divisor, 0);
    rem
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bch_255_parity_bits_match_standard_table() {
        // Standard BCH(255, k) table: t -> n-k.
        let expected = [
            (1usize, 8usize),
            (2, 16),
            (3, 24),
            (4, 32),
            (5, 40),
            (6, 48),
            (7, 56),
            (8, 64),
            (9, 68),
            (10, 76),
        ];
        for (t, parity) in expected {
            assert_eq!(BchCode::parity_bits_for(8, t).unwrap(), parity, "t = {t}");
        }
    }

    #[test]
    fn bch_t1_matches_hamming() {
        // A t=1 BCH code of length 2^m - 1 is a Hamming code.
        for m in [4usize, 5, 8] {
            let code = BchCode::new(m, 1).unwrap();
            assert_eq!(code.parity_bits(), m);
            assert_eq!(code.k(), code.n() - m);
        }
    }

    #[test]
    fn invalid_parameters() {
        assert!(BchCode::new(2, 1).is_err());
        assert!(BchCode::new(8, 0).is_err());
        assert!(BchCode::parity_bits_for(8, 0).is_err());
        // t large enough to exhaust the cyclotomic cosets leaves a single
        // data bit (the repetition-like limit), never zero.
        assert_eq!(BchCode::new(3, 3).unwrap().k(), 1);
    }

    #[test]
    fn encode_produces_zero_syndromes() {
        let code = BchCode::new(5, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let data: BitVec = (0..code.k()).map(|_| rng.gen_bool(0.5)).collect();
            let cw = code.encode(&data);
            assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for (m, t) in [(4usize, 2usize), (5, 3), (6, 2)] {
            let code = BchCode::new(m, t).unwrap();
            for trial in 0..20 {
                let data: BitVec = (0..code.k()).map(|_| rng.gen_bool(0.5)).collect();
                let clean = code.encode(&data);
                let mut corrupted = clean.clone();
                let num_errs = 1 + (trial % t);
                let mut positions: Vec<usize> = (0..code.n()).collect();
                positions.shuffle(&mut rng);
                for &p in positions.iter().take(num_errs) {
                    corrupted.flip(p);
                }
                let fixed = code.decode(&mut corrupted).unwrap();
                assert_eq!(fixed, num_errs, "m={m} t={t} trial={trial}");
                assert_eq!(corrupted, clean);
            }
        }
    }

    #[test]
    fn corrects_two_errors_in_bch_255() {
        let code = BchCode::new(8, 2).unwrap();
        let data: BitVec = (0..code.k()).map(|i| i % 5 == 0).collect();
        let clean = code.encode(&data);
        let mut corrupted = clean.clone();
        corrupted.flip(10);
        corrupted.flip(250);
        assert_eq!(code.decode(&mut corrupted).unwrap(), 2);
        assert_eq!(corrupted, clean);
    }

    #[test]
    fn rejects_more_than_t_errors_most_of_the_time() {
        // With t=1 and 3 injected errors the decoder must never silently
        // return success with the wrong data; it either errors out or
        // "corrects" to a different valid codeword (which we detect here by
        // comparing data). We assert it never reports 3 corrections.
        let code = BchCode::new(5, 1).unwrap();
        let data = BitVec::zeros(code.k());
        let clean = code.encode(&data);
        let mut corrupted = clean.clone();
        corrupted.flip(1);
        corrupted.flip(7);
        corrupted.flip(20);
        match code.decode(&mut corrupted) {
            Ok(fixed) => assert!(fixed <= code.t()),
            Err(EccError::Uncorrectable { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parity_update_mask_matches_encode_delta() {
        let code = BchCode::new(5, 2).unwrap();
        let zero = BitVec::zeros(code.k());
        let base = code.encode(&zero).slice(code.k()..code.n());
        for j in (0..code.k()).step_by(3) {
            let mut flipped = zero.clone();
            flipped.flip(j);
            let parity = code.encode(&flipped).slice(code.k()..code.n());
            assert_eq!(&parity.xor(&base), code.parity_update_mask(j));
        }
    }

    #[test]
    fn generator_divides_codeword_polynomials() {
        // Every codeword, viewed as a polynomial, must be divisible by g(x).
        let code = BchCode::new(4, 2).unwrap();
        let data = BitVec::from_u64(0b10110, code.k());
        let cw = code.encode(&data);
        let parity = code.parity_bits();
        let mut poly = vec![0u8; code.n()];
        for pos in 0..code.n() {
            let deg = if pos < code.k() {
                parity + pos
            } else {
                pos - code.k()
            };
            poly[deg] = u8::from(cw.get(pos));
        }
        let rem = poly_mod_gf2(&poly, code.generator());
        assert!(rem.iter().all(|&b| b == 0));
    }
}
