//! Cross-crate integration tests: workload netlists compiled by
//! `nvpim-compiler`, executed on the `nvpim-sim` array under every
//! `nvpim-core` protection scheme, validated against the software references
//! in `nvpim-workloads`.

use nvpim::compiler::schedule::map_netlist;
use nvpim::core::config::{DesignConfig, GateStyle};
use nvpim::core::executor::ProtectedExecutor;
use nvpim::sim::array::PimArray;
use nvpim::sim::fault::{ErrorRates, FaultInjector};
use nvpim::sim::technology::Technology;
use nvpim::workloads::matmul;
use nvpim::workloads::mnist;

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[test]
fn matmul_element_is_correct_under_every_scheme_and_technology() {
    let dim = 3usize;
    let netlist = matmul::row_netlist(dim);
    let a = [12u64, 250, 3];
    let b = [77u64, 1, 199];
    let expected: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
    let inputs = matmul::pack_dot_product_inputs(&a, &b);

    for tech in Technology::ALL {
        for config in [
            DesignConfig::unprotected(tech),
            DesignConfig::ecim(tech),
            DesignConfig::ecim(tech).with_single_output_gates(),
            DesignConfig::trim(tech),
            DesignConfig::trim(tech).with_single_output_gates(),
        ] {
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(tech);
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            assert_eq!(
                from_bits(&report.outputs),
                expected,
                "{} on {tech}",
                config.label()
            );
        }
    }
}

#[test]
fn mnist_chunk_is_correct_on_the_array_and_protected_schemes_detect_faults() {
    let weight_bits = 2usize;
    let terms = 8usize;
    let netlist = mnist::row_netlist_with_terms(weight_bits, terms);
    let pixels = [13u8, 255, 0, 80, 91, 7, 200, 66];
    let weights = [3u8, 1, 2, 0, 3, 3, 1, 2];
    let expected: u64 = pixels
        .iter()
        .zip(&weights)
        .map(|(&p, &w)| p as u64 * w as u64)
        .sum();
    let inputs = mnist::pack_row_inputs(&pixels, &weights, weight_bits);

    // Clean run on every scheme.
    for config in [
        DesignConfig::unprotected(Technology::SttMram),
        DesignConfig::ecim(Technology::SttMram),
        DesignConfig::trim(Technology::SttMram),
    ] {
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(Technology::SttMram);
        let report = executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap();
        assert_eq!(from_bits(&report.outputs), expected, "{}", config.label());
    }

    // Faulty run: protected schemes must correct, and must have detected
    // something across the seeds. The rate must keep each logic-level chunk
    // in the single-error regime the SEP guarantee covers — the parity
    // pipeline's working cells see far more operations than compute cells,
    // so the per-chunk fault probability is much higher than `gate` alone
    // suggests.
    let rates = ErrorRates {
        gate: 0.0001,
        ..ErrorRates::NONE
    };
    for config in [
        DesignConfig::ecim(Technology::SttMram),
        DesignConfig::trim(Technology::SttMram),
    ] {
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut detections = 0;
        for seed in 0..10u64 {
            let mut array = PimArray::standard(Technology::SttMram)
                .with_fault_injector(FaultInjector::new(rates, seed + 3));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            assert_eq!(
                from_bits(&report.outputs),
                expected,
                "{} seed {seed}",
                config.label()
            );
            detections += report.errors_detected;
        }
        assert!(detections > 0, "{} never detected a fault", config.label());
    }
}

#[test]
fn single_output_designs_spend_more_metadata_operations() {
    let netlist = matmul::row_netlist(2);
    let a = [9u64, 14];
    let b = [3u64, 110];
    let inputs = matmul::pack_dot_product_inputs(&a, &b);
    let tech = Technology::ReRam;

    let run = |style: GateStyle| {
        let mut config = DesignConfig::ecim(tech);
        config.gate_style = style;
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(tech);
        executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap()
    };
    let multi = run(GateStyle::MultiOutput);
    let single = run(GateStyle::SingleOutput);
    assert_eq!(multi.outputs, single.outputs);
    assert!(single.metadata_gate_ops >= multi.metadata_gate_ops);
}

#[test]
fn checker_corrections_repair_the_array_contents_not_just_the_report() {
    // After a protected run with injected faults, re-reading the output cells
    // directly from the array must give the corrected values (the Checker
    // writes corrections back into the array, §IV-B).
    let netlist = matmul::row_netlist(2);
    let a = [200u64, 45];
    let b = [7u64, 90];
    let expected: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
    let inputs = matmul::pack_dot_product_inputs(&a, &b);
    let config = DesignConfig::ecim(Technology::SttMram);
    let executor = ProtectedExecutor::new(config.clone());
    let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
    // Low enough that (under the skip-sampled fault stream) at most one
    // error lands per logic level — the SEP operating regime.
    let rates = ErrorRates {
        gate: 0.0002,
        ..ErrorRates::NONE
    };
    let mut detections = 0u64;
    for seed in 0..5u64 {
        let mut array = PimArray::standard(Technology::SttMram)
            .with_fault_injector(FaultInjector::new(rates, seed + 11));
        let report = executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap();
        detections += report.errors_detected;
        let mut value = 0u64;
        for (i, col) in schedule.output_cols.iter().enumerate() {
            let col = col.expect("outputs are resident");
            if array.peek(0, col).unwrap() {
                value |= 1 << i;
            }
        }
        assert_eq!(value, expected, "seed {seed}");
    }
    assert!(
        detections > 0,
        "this regime must detect (and repair) injected errors"
    );
}
