//! Lane-batched protected execution: the
//! [`ProtectedExecutor`](crate::executor::ProtectedExecutor) semantics on
//! the transposed, bit-sliced array — 64 Monte Carlo trials per run.
//!
//! [`SlicedExecutor`] validates a compiled [`RowSchedule`] and dispatches
//! to the scheme's
//! [`SchemeRuntime::run_sliced`](crate::scheme::SchemeRuntime::run_sliced)
//! (per-scheme paths live in [`crate::schemes`]; a scheme opts in by
//! declaring the `sliceable` capability). The array is a
//! [`SlicedPimArray`] whose cells each hold one `u64` of 64 independent
//! trial lanes. The *operation sequence* of a protected run is a pure
//! function of the schedule (gate order, parity folds, logic-level check
//! boundaries are never data-dependent), so every lane executes the same
//! program and each gate/fold/preset becomes a handful of word operations
//! serving all 64 trials. Only the Checker's decode step diverges per lane
//! — and its lane-parallel syndrome / majority-vote kernels
//! ([`EcimChecker::decode_level_lanes`](crate::checker::EcimChecker::decode_level_lanes),
//! [`TrimChecker::vote_level_lanes`](crate::checker::TrimChecker::vote_level_lanes))
//! fall back to scalar work only for the rare lanes that actually observed
//! an error.
//!
//! **Equivalence contract:** lane *k* of a batch — outputs, detection /
//! correction / uncorrectable counters, and the injected-fault log — is
//! bit-identical to a scalar
//! [`ProtectedExecutor`](crate::executor::ProtectedExecutor) run of trial
//! *k* with the same seeds. The tests in this module assert it per scheme and gate
//! style; `nvpim-sweep`'s backend-equivalence suite asserts it at report
//! granularity.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::{RowSchedule, ScheduledGate};
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::sliced::{SlicedPimArray, LANES};

use crate::config::DesignConfig;
use crate::executor::ProtectedExecError;

/// Per-lane counters of one sliced batch run. `checks` and
/// `metadata_gate_ops` are schedule-driven and therefore identical in
/// every lane; the error counters are per lane. Primary outputs stay in
/// [`SlicedExecScratch::output_words`] (transposed, one word per output
/// bit) to keep the report allocation-free.
#[derive(Debug, Clone)]
pub struct SlicedRunReport {
    /// Checker invocations (identical in every lane).
    pub checks: u64,
    /// Metadata gate operations (identical in every lane).
    pub metadata_gate_ops: u64,
    /// Checks that detected an error, per lane.
    pub errors_detected: [u64; LANES],
    /// Data bits corrected and written back, per lane.
    pub corrections_written_back: [u64; LANES],
    /// Checks flagged uncorrectable, per lane.
    pub uncorrectable: [u64; LANES],
}

impl Default for SlicedRunReport {
    fn default() -> Self {
        Self::new()
    }
}

impl SlicedRunReport {
    /// A zeroed report (the starting point of every
    /// [`SchemeRuntime::run_sliced`](crate::scheme::SchemeRuntime::run_sliced)
    /// implementation).
    pub fn new() -> Self {
        Self {
            checks: 0,
            metadata_gate_ops: 0,
            errors_detected: [0; LANES],
            corrections_written_back: [0; LANES],
            uncorrectable: [0; LANES],
        }
    }
}

/// Reusable working memory for [`SlicedExecutor::run_batch`]; the sliced
/// counterpart of [`crate::executor::ExecScratch`], with the Checker
/// transfer buffers transposed into lane words. Cleared (never shrunk) per
/// run — steady-state batches allocate nothing.
/// The buffers are public so
/// [`SchemeRuntime`](crate::scheme::SchemeRuntime) implementations —
/// including out-of-tree ones — can reuse them instead of allocating their
/// own per-batch state; the parity/copy buffers are general-purpose despite
/// their historical per-scheme naming.
#[derive(Debug, Default)]
pub struct SlicedExecScratch {
    /// Net id → primary-input position (dense, `u32::MAX` = not an input).
    pub input_positions: Vec<u32>,
    /// Primary inputs already written into the array this run (by net id).
    pub materialized: Vec<bool>,
    /// Nets consumed by at least one gate or marked as primary outputs.
    pub used_nets: Vec<bool>,
    /// Output-column assembly buffer for one gate operation.
    pub out_cols: Vec<usize>,
    /// Extra (metadata) output columns for one gate operation.
    pub extra_cols: Vec<usize>,
    /// Data column of each codeword position in the current check chunk
    /// (parity-style schemes).
    pub chunk_cols: Vec<usize>,
    /// Which of ping/pong holds each running parity bit.
    pub parity_in_pong: Vec<bool>,
    /// Check flush: lane words of the chunk's data cells.
    pub data_words: Vec<u64>,
    /// Check flush: lane words of the running parity cells.
    pub parity_words: Vec<u64>,
    /// Check flush: lane-parallel syndrome accumulator (one word per parity
    /// bit).
    pub syndrome_words: Vec<u64>,
    /// The three copy columns of every gate in the current level
    /// (redundancy-style schemes).
    pub level_outputs: Vec<[usize; 3]>,
    /// Vote flush: lane words of the first copy plane.
    pub copy_a: Vec<u64>,
    /// Vote flush: lane words of the second copy plane.
    pub copy_b: Vec<u64>,
    /// Vote flush: lane words of the third copy plane.
    pub copy_c: Vec<u64>,
    /// Vote flush: lane-parallel majority vote result.
    pub voted: Vec<u64>,
    /// Primary outputs after the run, transposed: `output_words[i]` holds
    /// output bit `i` across all lanes.
    pub output_words: Vec<u64>,
}

impl SlicedExecScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, netlist: &Netlist) {
        let nets = netlist.net_count;
        self.input_positions.clear();
        self.input_positions.resize(nets, u32::MAX);
        for (pos, &net) in netlist.inputs.iter().enumerate() {
            self.input_positions[net] = pos as u32;
        }
        self.materialized.clear();
        self.materialized.resize(nets, false);
        self.used_nets.clear();
        self.used_nets.resize(nets, false);
        for gate in &netlist.gates {
            for &input in &gate.inputs {
                self.used_nets[input] = true;
            }
        }
        for &output in &netlist.outputs {
            self.used_nets[output] = true;
        }
    }
}

/// Executes schedules under a [`DesignConfig`]'s protection scheme, 64
/// trials at a time. Construction mirrors
/// [`ProtectedExecutor`](crate::executor::ProtectedExecutor).
#[derive(Debug, Clone)]
pub struct SlicedExecutor {
    config: DesignConfig,
    code: HammingCode,
}

impl SlicedExecutor {
    /// Creates a sliced executor for the given design point.
    pub fn new(config: DesignConfig) -> Self {
        let code = config.hamming_code();
        Self { config, code }
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// The Hamming code used for parity-style schemes.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// Runs `schedule` in row `row` for every lane of `array`'s current
    /// batch at once. `inputs` is transposed: `inputs[i]` holds primary
    /// input `i` across all lanes. Lanes beyond the batch's valid mask
    /// carry garbage and are never reported.
    ///
    /// # Errors
    ///
    /// Exactly the scalar
    /// [`ProtectedExecutor::run_with_scratch`](crate::executor::ProtectedExecutor::run_with_scratch)
    /// validation errors (a failing batch fails identically for every
    /// lane, before any fault is drawn).
    pub fn run_batch(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        if schedule.layout != self.config.row_layout() {
            return Err(ProtectedExecError::LayoutMismatch);
        }
        if !schedule.is_directly_executable() {
            return Err(ProtectedExecError::NotDirectlyExecutable);
        }
        if inputs.len() != netlist.inputs.len() {
            return Err(ProtectedExecError::InputArityMismatch {
                expected: netlist.inputs.len(),
                got: inputs.len(),
            });
        }
        if array.cols() < self.config.array_columns || row >= array.rows() {
            return Err(ProtectedExecError::ArrayTooSmall);
        }
        scratch.prepare(netlist);
        self.config
            .scheme
            .runtime()
            .run_sliced(self, netlist, schedule, array, row, inputs, scratch)
    }

    // ------------------------------------------------------------------
    // Scheme-runtime building blocks: the lane-parallel mirrors of the
    // scalar executor's primitives, composed by
    // `SchemeRuntime::run_sliced` implementations.
    // ------------------------------------------------------------------

    /// Writes any not-yet-materialized primary inputs consumed by `sg` into
    /// every copy this design keeps (the lane-parallel mirror of
    /// [`ProtectedExecutor::materialize_inputs`](crate::executor::ProtectedExecutor::materialize_inputs)).
    pub fn materialize_inputs(
        &self,
        netlist: &Netlist,
        sg: &ScheduledGate,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) {
        let gate_inputs = &netlist.gates[sg.index].inputs;
        for (i, &net) in gate_inputs.iter().enumerate() {
            let pos = scratch.input_positions[net];
            if pos != u32::MAX && !scratch.materialized[net] {
                scratch.materialized[net] = true;
                for copy in 0..self.config.cells_per_value() {
                    let col = sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)][i];
                    array.write_lanes(row, col, inputs[pos as usize]);
                }
            }
        }
    }

    /// Reads the schedule's primary outputs into
    /// [`SlicedExecScratch::output_words`] (transposed, one word per output
    /// bit).
    pub fn read_outputs(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) {
        scratch.output_words.clear();
        for (i, col) in schedule.output_cols.iter().enumerate() {
            match col {
                Some(c) => scratch.output_words.push(array.cell(row, *c)),
                None => {
                    let net = netlist.outputs[i];
                    let pos = netlist
                        .inputs
                        .iter()
                        .position(|&n| n == net)
                        .expect("non-resident output must be a primary input");
                    scratch.output_words.push(inputs[pos]);
                }
            }
        }
    }

    /// One scheduled gate into its primary output columns plus `extra`
    /// metadata columns — the lane-parallel mirror of the scalar
    /// `execute_plain_gate` (identical output order, hence identical
    /// per-output fault-decision order).
    pub fn execute_plain_gate(
        &self,
        sg: &ScheduledGate,
        array: &mut SlicedPimArray,
        row: usize,
        extra: &[usize],
        out_buf: &mut Vec<usize>,
    ) {
        let outputs: &[usize] = if extra.is_empty() {
            &sg.output_cols
        } else {
            out_buf.clear();
            out_buf.extend_from_slice(&sg.output_cols);
            out_buf.extend_from_slice(extra);
            out_buf
        };
        match sg.op {
            LogicOp::Zero | LogicOp::One => {
                let value = sg.op == LogicOp::One;
                for &col in outputs {
                    array.write_const(row, col, value);
                }
            }
            LogicOp::Nor => array.gate_nor(row, &sg.input_cols, outputs),
            LogicOp::Copy => {
                for &col in outputs {
                    array.gate_copy(row, sg.input_cols[0], col);
                }
            }
            LogicOp::Thr => {
                for &col in outputs {
                    array.gate_thr(row, &sg.input_cols, col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ProtectedExecutor;
    use nvpim_compiler::builder::CircuitBuilder;
    use nvpim_compiler::schedule::map_netlist;
    use nvpim_sim::array::PimArray;
    use nvpim_sim::fault::{ErrorRates, FaultInjector};
    use nvpim_sim::technology::Technology;

    fn mac_netlist() -> Netlist {
        let mut b = CircuitBuilder::new();
        let acc = b.input_word(8);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let out = b.mac(&acc, &x, &y);
        b.mark_output_word(&out);
        b.finish()
    }

    fn lane_inputs(netlist: &Netlist, lanes: usize) -> (Vec<u64>, Vec<Vec<bool>>) {
        let n = netlist.inputs.len();
        let mut words = vec![0u64; n];
        let mut per_lane = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let bits: Vec<bool> = (0..n)
                .map(|i| (lane.wrapping_mul(7) + i.wrapping_mul(13)) % 3 == 0)
                .collect();
            for (i, &b) in bits.iter().enumerate() {
                words[i] |= u64::from(b) << lane;
            }
            per_lane.push(bits);
        }
        (words, per_lane)
    }

    /// Full-batch equivalence: every lane of a sliced run must match a
    /// scalar run of the same trial — outputs, counters and fault logs —
    /// across schemes, gate styles and batch widths (incl. ragged tails).
    #[test]
    fn sliced_batches_match_scalar_runs_lane_for_lane() {
        let netlist = mac_netlist();
        let rates = ErrorRates {
            gate: 2e-3,
            ..ErrorRates::NONE
        };
        let configs = [
            DesignConfig::unprotected(Technology::SttMram),
            DesignConfig::ecim(Technology::SttMram),
            DesignConfig::ecim(Technology::ReRam).with_single_output_gates(),
            DesignConfig::ecim(Technology::SttMram).with_hamming_data_bits(64),
            DesignConfig::trim(Technology::SotSheMram),
            DesignConfig::trim(Technology::SttMram).with_single_output_gates(),
        ];
        for config in configs {
            for lanes in [64usize, 5, 1] {
                let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
                let (input_words, per_lane_inputs) = lane_inputs(&netlist, lanes);
                let seeds: Vec<u64> = (0..lanes).map(|l| 0xFACE ^ (l as u64) << 3).collect();

                let sliced_exec = SlicedExecutor::new(config.clone());
                let mut array = SlicedPimArray::standard_row();
                array.reset_for_batch(rates, &seeds);
                let mut scratch = SlicedExecScratch::new();
                let report = sliced_exec
                    .run_batch(
                        &netlist,
                        &schedule,
                        &mut array,
                        0,
                        &input_words,
                        &mut scratch,
                    )
                    .unwrap();

                let scalar_exec = ProtectedExecutor::new(config.clone());
                let mut total_faults = 0usize;
                for lane in 0..lanes {
                    let mut scalar_array = PimArray::standard(config.technology)
                        .with_fault_injector(FaultInjector::new(rates, seeds[lane]));
                    let scalar = scalar_exec
                        .run(
                            &netlist,
                            &schedule,
                            &mut scalar_array,
                            0,
                            &per_lane_inputs[lane],
                        )
                        .unwrap();
                    let label = format!("{} lanes={lanes} lane={lane}", config.label());
                    let sliced_outputs: Vec<bool> = scratch
                        .output_words
                        .iter()
                        .map(|w| (w >> lane) & 1 == 1)
                        .collect();
                    assert_eq!(sliced_outputs, scalar.outputs, "{label}: outputs");
                    assert_eq!(report.checks, scalar.checks, "{label}: checks");
                    assert_eq!(
                        report.metadata_gate_ops, scalar.metadata_gate_ops,
                        "{label}: metadata ops"
                    );
                    assert_eq!(
                        report.errors_detected[lane], scalar.errors_detected,
                        "{label}: detections"
                    );
                    assert_eq!(
                        report.corrections_written_back[lane], scalar.corrections_written_back,
                        "{label}: corrections"
                    );
                    assert_eq!(
                        report.uncorrectable[lane], scalar.uncorrectable,
                        "{label}: uncorrectable"
                    );
                    assert_eq!(
                        array.injector().lane_log(lane),
                        scalar_array.fault_injector().log(),
                        "{label}: fault log"
                    );
                    total_faults += array.injector().lane_fault_count(lane);
                }
                if lanes == 64 {
                    assert!(
                        total_faults > 0,
                        "{}: a 64-lane batch at gate rate 2e-3 must inject faults",
                        config.label()
                    );
                }
            }
        }
    }

    #[test]
    fn validation_errors_mirror_the_scalar_executor() {
        let netlist = mac_netlist();
        let config = DesignConfig::ecim(Technology::SttMram);
        let exec = SlicedExecutor::new(config);
        // Schedule compiled for the unprotected layout → layout mismatch.
        let schedule = map_netlist(
            &netlist,
            DesignConfig::unprotected(Technology::SttMram).row_layout(),
        )
        .unwrap();
        let mut array = SlicedPimArray::standard_row();
        array.reset_for_batch(ErrorRates::NONE, &[1, 2, 3]);
        let mut scratch = SlicedExecScratch::new();
        let err = exec.run_batch(&netlist, &schedule, &mut array, 0, &[0; 16], &mut scratch);
        assert_eq!(err.unwrap_err(), ProtectedExecError::LayoutMismatch);
    }
}
