//! The in-memory FFT benchmark family (`fft8` … `fft64`), modeled after the
//! butterfly-arithmetic CRAM FFT the paper cites as its larger-scale
//! sensitivity benchmark (§V).
//!
//! Per the PiM mapping, each active row owns one butterfly *lane*: it
//! executes one radix-2 butterfly per FFT stage (`log2(N)` butterflies in
//! sequence), on complex fixed-point values. `N/2` rows run in parallel;
//! the inter-stage shuffle is handled by the array interconnect and is
//! identical for protected and unprotected designs, so it does not enter the
//! per-row program.

use nvpim_compiler::builder::{CircuitBuilder, Word};
use nvpim_compiler::netlist::Netlist;

/// Real/imaginary component precision (bits) of the FFT operands.
pub const COMPONENT_BITS: usize = 8;
/// Fixed-point scale of the twiddle factors (Q1.7: 128 ≡ 1.0).
pub const TWIDDLE_SCALE: i64 = 128;

/// A complex fixed-point value used by the software reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Complex {
    /// Real part.
    pub re: i64,
    /// Imaginary part.
    pub im: i64,
}

impl Complex {
    /// Creates a complex value.
    pub fn new(re: i64, im: i64) -> Self {
        Self { re, im }
    }
}

/// Number of FFT stages for an `n`-point transform.
pub fn stages(n: usize) -> usize {
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT size must be a power of two"
    );
    n.trailing_zeros() as usize
}

/// Software radix-2 decimation-in-time FFT over fixed-point complex values
/// (twiddles in Q1.7). Used as the functional reference.
pub fn reference_fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let mut data = bit_reverse_permute(input);
    let mut len = 2;
    while len <= n {
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let w = Complex::new(
                    (angle.cos() * TWIDDLE_SCALE as f64).round() as i64,
                    (angle.sin() * TWIDDLE_SCALE as f64).round() as i64,
                );
                let (a, b) = (data[start + k], data[start + k + len / 2]);
                let t = complex_mul_q7(b, w);
                data[start + k] = Complex::new(a.re + t.re, a.im + t.im);
                data[start + k + len / 2] = Complex::new(a.re - t.re, a.im - t.im);
            }
        }
        len *= 2;
    }
    data
}

/// Fixed-point complex multiply with a Q1.7 twiddle (result scaled back).
pub fn complex_mul_q7(a: Complex, w: Complex) -> Complex {
    Complex::new(
        (a.re * w.re - a.im * w.im) / TWIDDLE_SCALE,
        (a.re * w.im + a.im * w.re) / TWIDDLE_SCALE,
    )
}

fn bit_reverse_permute(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| input[(i as u32).reverse_bits() as usize >> (32 - bits)])
        .collect()
}

/// One radix-2 butterfly on unsigned magnitude words (the PiM netlist works
/// on unsigned fixed-point; sign handling is folded into the workload's
/// offset encoding, which does not change the gate schedule).
fn butterfly(
    b: &mut CircuitBuilder,
    a_re: &Word,
    a_im: &Word,
    b_re: &Word,
    b_im: &Word,
    w_re: &Word,
    w_im: &Word,
) -> (Word, Word, Word, Word) {
    // t = b * w (complex): four multiplications and two add/sub.
    let bw_rr = b.mul_unsigned(b_re, w_re);
    let bw_ii = b.mul_unsigned(b_im, w_im);
    let bw_ri = b.mul_unsigned(b_re, w_im);
    let bw_ir = b.mul_unsigned(b_im, w_re);
    let (t_re, _) = b.ripple_sub(&bw_rr, &bw_ii);
    let (t_im, _) = b.ripple_add(&bw_ri, &bw_ir, None);
    // Truncate the products back to the working width (Q-format rescale).
    let width = a_re.len();
    let t_re = t_re[COMPONENT_BITS - 1..COMPONENT_BITS - 1 + width].to_vec();
    let t_im = t_im[COMPONENT_BITS - 1..COMPONENT_BITS - 1 + width].to_vec();
    // out0 = a + t, out1 = a - t.
    let (o0_re, _) = b.ripple_add(a_re, &t_re, None);
    let (o0_im, _) = b.ripple_add(a_im, &t_im, None);
    let (o1_re, _) = b.ripple_sub(a_re, &t_re);
    let (o1_im, _) = b.ripple_sub(a_im, &t_im);
    (o0_re, o0_im, o1_re, o1_im)
}

/// Builds the per-row netlist of the `fft<points>` benchmark: one butterfly
/// lane, i.e. `log2(points)` chained radix-2 butterflies on complex
/// fixed-point values, with per-stage twiddle factors as inputs.
pub fn row_netlist(points: usize) -> Netlist {
    let n_stages = stages(points);
    let width = 2 * COMPONENT_BITS; // working precision per component
    let mut b = CircuitBuilder::new();
    let mut a_re = b.input_word(width);
    let mut a_im = b.input_word(width);
    let mut b_re = b.input_word(width);
    let mut b_im = b.input_word(width);
    for _ in 0..n_stages {
        let w_re = b.input_word(COMPONENT_BITS);
        let w_im = b.input_word(COMPONENT_BITS);
        let (o0_re, o0_im, o1_re, o1_im) =
            butterfly(&mut b, &a_re, &a_im, &b_re, &b_im, &w_re, &w_im);
        // The next stage pairs this lane's first output with a partner
        // lane's output; the partner value arrives as the lane's `b` operand
        // for the next stage (data exchange outside the row program).
        a_re = o0_re;
        a_im = o0_im;
        b_re = o1_re;
        b_im = o1_im;
    }
    b.mark_output_word(&a_re);
    b.mark_output_word(&a_im);
    b.mark_output_word(&b_re);
    b.mark_output_word(&b_im);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_of_power_of_two() {
        assert_eq!(stages(8), 3);
        assert_eq!(stages(16), 4);
        assert_eq!(stages(64), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        stages(12);
    }

    #[test]
    fn reference_fft_of_impulse_is_flat() {
        // FFT of a unit impulse is constant across all bins.
        let mut input = vec![Complex::default(); 8];
        input[0] = Complex::new(100, 0);
        let out = reference_fft(&input);
        assert!(out.iter().all(|c| c.re == 100 && c.im == 0));
    }

    #[test]
    fn reference_fft_of_constant_concentrates_in_dc() {
        let input = vec![Complex::new(10, 0); 8];
        let out = reference_fft(&input);
        assert_eq!(out[0], Complex::new(80, 0));
        // Remaining bins are (near) zero after fixed-point rounding.
        for bin in &out[1..] {
            assert!(bin.re.abs() <= 2 && bin.im.abs() <= 2, "{bin:?}");
        }
    }

    #[test]
    fn complex_mul_q7_matches_float() {
        let a = Complex::new(50, -20);
        let w = Complex::new(91, -91); // ~ (0.71, -0.71)
        let p = complex_mul_q7(a, w);
        let expected_re = (50.0_f64 * 0.7109 - -20.0 * -0.7109).round();
        let expected_im = (50.0_f64 * -0.7109 + -20.0 * 0.7109).round();
        assert!((p.re as f64 - expected_re).abs() <= 2.0);
        assert!((p.im as f64 - expected_im).abs() <= 2.0);
    }

    #[test]
    fn row_netlist_grows_with_stage_count() {
        let g8 = row_netlist(8).gate_count();
        let g32 = row_netlist(32).gate_count();
        assert!(g8 > 1000, "butterfly lanes are substantial circuits");
        assert!(g32 > g8);
        // Gate count grows roughly with the number of stages (5/3 here).
        assert!((g32 as f64 / g8 as f64) < 2.5);
    }

    #[test]
    fn row_netlist_evaluates_butterflies() {
        // With zero twiddles, t = 0, so outputs are (a, a) after one stage
        // regardless of b. Build a 2-point lane and verify.
        let netlist = row_netlist(2);
        let width = 2 * COMPONENT_BITS;
        let mut inputs = Vec::new();
        let a_re = 1000u64;
        let a_im = 77u64;
        for value in [a_re, a_im, 5u64, 9u64] {
            for i in 0..width {
                inputs.push((value >> i) & 1 == 1);
            }
        }
        // twiddle = 0 + 0j
        inputs.extend(std::iter::repeat_n(false, 2 * COMPONENT_BITS));
        let out = netlist.evaluate(&inputs);
        let word = |idx: usize| -> u64 {
            out[idx * width..(idx + 1) * width]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        assert_eq!(word(0), a_re);
        assert_eq!(word(1), a_im);
        assert_eq!(word(2), a_re);
        assert_eq!(word(3), a_im);
    }
}
