//! TRiM — triple redundancy in memory (§IV-D): every value is computed
//! into three cells (one multi-output gate, or three single-output gates in
//! separate partitions); an external Checker majority-votes the copies at
//! every logic-level boundary and writes corrections back.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::RowSchedule;
use nvpim_sim::array::PimArray;
use nvpim_sim::gates::GateKind;
use nvpim_sim::sliced::SlicedPimArray;

use crate::checker::{CheckerCostModel, TrimChecker};
use crate::config::{DesignConfig, GateStyle};
use crate::executor::{ExecScratch, ProtectedExecError, ProtectedExecutor, ProtectedRunReport};
use crate::scheme::{CostEnv, SchemeRuntime};
use crate::sliced::{SlicedExecScratch, SlicedExecutor, SlicedRunReport};
use crate::system::{CostBreakdown, CHECKER_EXPOSED_FRACTION};

/// TRiM's runtime (registered as `"Trim"`, displayed as `"TRiM"`).
#[derive(Debug)]
pub struct TrimScheme;

impl SchemeRuntime for TrimScheme {
    fn wire_name(&self) -> &'static str {
        "Trim"
    }

    fn display_name(&self) -> &'static str {
        "TRiM"
    }

    fn metadata_columns(&self, _config: &DesignConfig) -> usize {
        // TRiM's copies live with each value, not in a metadata region.
        0
    }

    fn cells_per_value(&self) -> usize {
        3
    }

    fn sliceable(&self) -> bool {
        true
    }

    fn checker_cost(&self, config: &DesignConfig) -> CheckerCostModel {
        CheckerCostModel::for_majority(config.data_bits())
    }

    fn metadata_costs(
        &self,
        schedule: &RowSchedule,
        config: &DesignConfig,
        env: &CostEnv,
        b: &mut CostBreakdown,
    ) -> u64 {
        let checker_cost = self.checker_cost(config);
        let mut checker_traffic_bits = 0u64;
        for level in &schedule.level_profile {
            let outputs = (level.nor_ops + level.thr_ops + level.copy_ops) as f64;
            if outputs == 0.0 {
                continue;
            }
            let base_nor_energy = (level.nor_ops + level.copy_ops) as f64 * env.nor_e;
            let base_thr_energy = level.thr_ops as f64 * env.thr_e;
            // Two redundant copies of every output.
            if env.multi_output {
                // Same gate drives three outputs: 3x energy, no extra time.
                b.metadata_energy_fj += 2.0 * (base_nor_energy + base_thr_energy);
            } else {
                // Two additional single-output executions per gate in
                // other partitions (concurrent in time), each with its own
                // operand staging write.
                b.metadata_energy_fj +=
                    2.0 * (base_nor_energy + base_thr_energy + outputs * (env.nor_e + env.write_e));
            }
            // Checker communication: three copies of the outputs.
            let bits = 3 * outputs as usize;
            checker_traffic_bits += bits as u64;
            b.checker_time_ns += CHECKER_EXPOSED_FRACTION * env.periphery.read_latency(bits);
            b.checker_comm_energy_fj += env.periphery.read_energy(bits);
            b.checker_logic_energy_fj += checker_cost.energy_per_check_fj;
        }
        checker_traffic_bits
    }

    fn run_scalar(
        &self,
        exec: &ProtectedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let config = exec.config();
        let mut checker = TrimChecker::new(config.data_bits());
        let mut metadata_gate_ops = 0u64;
        let mut corrections_written_back = 0u64;
        let mut errors_detected = 0u64;

        scratch.level_outputs.clear();
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                flush_level(
                    array,
                    row,
                    &mut checker,
                    scratch,
                    &mut errors_detected,
                    &mut corrections_written_back,
                )?;
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch)?;

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                continue;
            }

            match config.gate_style {
                GateStyle::MultiOutput => {
                    // One 3-output gate produces the value and both copies.
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols)?;
                    metadata_gate_ops += 2;
                }
                GateStyle::SingleOutput => {
                    // Three independent single-output gates, each reading its
                    // own copy of the operands (separate partitions).
                    for copy in 0..3 {
                        let inputs_for_copy =
                            &sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)];
                        let kind = match sg.op {
                            LogicOp::Nor => GateKind::NOR2,
                            LogicOp::Thr => GateKind::THR,
                            LogicOp::Copy => GateKind::Copy,
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        };
                        array.execute_gate_with(
                            kind,
                            row,
                            inputs_for_copy,
                            &[sg.output_cols[copy]],
                        )?;
                        if copy > 0 {
                            metadata_gate_ops += 1;
                        }
                    }
                }
            }
            scratch
                .level_outputs
                .push([sg.output_cols[0], sg.output_cols[1], sg.output_cols[2]]);
        }
        flush_level(
            array,
            row,
            &mut checker,
            scratch,
            &mut errors_detected,
            &mut corrections_written_back,
        )?;

        Ok(ProtectedRunReport {
            outputs: exec.read_outputs(netlist, schedule, array, row, inputs)?,
            checks: checker.checks(),
            errors_detected,
            corrections_written_back,
            uncorrectable: 0,
            metadata_gate_ops,
        })
    }

    fn run_sliced(
        &self,
        exec: &SlicedExecutor,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut SlicedPimArray,
        row: usize,
        inputs: &[u64],
        scratch: &mut SlicedExecScratch,
    ) -> Result<SlicedRunReport, ProtectedExecError> {
        let config = exec.config();
        let mut checker = TrimChecker::new(config.data_bits());
        let mut report = SlicedRunReport::new();

        scratch.level_outputs.clear();
        let mut current_level = schedule.gates.first().map(|g| g.level).unwrap_or(0);

        for sg in &schedule.gates {
            let gate = &netlist.gates[sg.index];
            if sg.level != current_level {
                sliced_flush_level(array, row, &mut checker, scratch, &mut report);
                current_level = sg.level;
            }
            exec.materialize_inputs(netlist, sg, array, row, inputs, scratch);

            let is_constant = matches!(sg.op, LogicOp::Zero | LogicOp::One);
            if is_constant || !scratch.used_nets[gate.output] {
                exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                continue;
            }

            match config.gate_style {
                GateStyle::MultiOutput => {
                    exec.execute_plain_gate(sg, array, row, &[], &mut scratch.out_cols);
                    report.metadata_gate_ops += 2;
                }
                GateStyle::SingleOutput => {
                    for copy in 0..3 {
                        let inputs_for_copy =
                            &sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)];
                        let dst = sg.output_cols[copy];
                        match sg.op {
                            LogicOp::Nor => array.gate_nor(row, inputs_for_copy, &[dst]),
                            LogicOp::Thr => array.gate_thr(row, inputs_for_copy, dst),
                            LogicOp::Copy => array.gate_copy(row, inputs_for_copy[0], dst),
                            LogicOp::Zero | LogicOp::One => unreachable!("constants handled above"),
                        }
                        if copy > 0 {
                            report.metadata_gate_ops += 1;
                        }
                    }
                }
            }
            scratch
                .level_outputs
                .push([sg.output_cols[0], sg.output_cols[1], sg.output_cols[2]]);
        }
        sliced_flush_level(array, row, &mut checker, scratch, &mut report);

        exec.read_outputs(netlist, schedule, array, row, inputs, scratch);
        report.checks = checker.checks();
        Ok(report)
    }
}

fn flush_level(
    array: &mut PimArray,
    row: usize,
    checker: &mut TrimChecker,
    scratch: &mut ExecScratch,
    errors_detected: &mut u64,
    corrections_written_back: &mut u64,
) -> Result<(), ProtectedExecError> {
    if scratch.level_outputs.is_empty() {
        return Ok(());
    }
    scratch.cols_a.clear();
    scratch.cols_b.clear();
    scratch.cols_c.clear();
    for cols in &scratch.level_outputs {
        scratch.cols_a.push(cols[0]);
        scratch.cols_b.push(cols[1]);
        scratch.cols_c.push(cols[2]);
    }
    array.read_bits_into(row, &scratch.cols_a, &mut scratch.bits_a)?;
    array.read_bits_into(row, &scratch.cols_b, &mut scratch.bits_b)?;
    array.read_bits_into(row, &scratch.cols_c, &mut scratch.bits_c)?;
    let dissent = checker.vote_level_into(
        &scratch.bits_a,
        &scratch.bits_b,
        &scratch.bits_c,
        &mut scratch.bits_vote,
    );
    if dissent {
        *errors_detected += 1;
        // Write the voted value back into every copy that disagreed —
        // word-parallel diff scans, touching only mismatching bits.
        let voted = &scratch.bits_vote;
        for (copy_idx, bits) in [&scratch.bits_a, &scratch.bits_b, &scratch.bits_c]
            .into_iter()
            .enumerate()
        {
            for i in bits.diff_ones(voted) {
                let col = scratch.level_outputs[i][copy_idx];
                array.write_cell(row, col, voted.get(i))?;
                *corrections_written_back += 1;
            }
        }
    }
    scratch.level_outputs.clear();
    Ok(())
}

fn sliced_flush_level(
    array: &mut SlicedPimArray,
    row: usize,
    checker: &mut TrimChecker,
    scratch: &mut SlicedExecScratch,
    report: &mut SlicedRunReport,
) {
    if scratch.level_outputs.is_empty() {
        return;
    }
    let SlicedExecScratch {
        level_outputs,
        copy_a,
        copy_b,
        copy_c,
        voted,
        ..
    } = scratch;
    copy_a.clear();
    copy_b.clear();
    copy_c.clear();
    for cols in level_outputs.iter() {
        copy_a.push(array.cell(row, cols[0]));
        copy_b.push(array.cell(row, cols[1]));
        copy_c.push(array.cell(row, cols[2]));
    }
    let valid = array.injector().valid_mask();
    let dissent = checker.vote_level_lanes(copy_a, copy_b, copy_c, valid, voted);
    if dissent != 0 {
        let mut lanes = dissent;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            report.errors_detected[lane] += 1;
        }
        // Write the voted value back into every copy that disagreed —
        // per (gate, copy) plane, only the mismatching lanes flip.
        for (g, cols) in level_outputs.iter().enumerate() {
            let v = voted[g];
            for (copy_idx, plane) in [&*copy_a, &*copy_b, &*copy_c].into_iter().enumerate() {
                let mut diff = (plane[g] ^ v) & valid;
                if diff == 0 {
                    continue;
                }
                let col = cols[copy_idx];
                let word = array.cell(row, col) ^ diff;
                array.set_cell(row, col, word);
                while diff != 0 {
                    let lane = diff.trailing_zeros() as usize;
                    diff &= diff - 1;
                    report.corrections_written_back[lane] += 1;
                }
            }
        }
    }
    level_outputs.clear();
}
