//! Dense bit vectors and matrices over GF(2).
//!
//! All ECC machinery in this crate (Hamming generator / parity-check matrices,
//! syndrome computation, BCH systematic encoding) is expressed as linear
//! algebra over the two-element field. This module provides the two core
//! types, [`BitVec`] and [`BitMatrix`], with word-packed storage.
//!
//! # Examples
//!
//! ```
//! use nvpim_ecc::gf2::{BitMatrix, BitVec};
//!
//! let identity = BitMatrix::identity(3);
//! let v = BitVec::from_bools(&[true, false, true]);
//! assert_eq!(identity.mul_vec(&v), v);
//! ```

use std::fmt;

/// A fixed-length vector of bits (elements of GF(2)), packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of the given length.
    ///
    /// # Examples
    ///
    /// ```
    /// # use nvpim_ecc::gf2::BitVec;
    /// let v = BitVec::zeros(10);
    /// assert_eq!(v.len(), 10);
    /// assert!(v.is_zero());
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Creates a vector of the given length from the low bits of `value`
    /// (bit 0 of `value` becomes element 0).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut v = Self::zeros(len);
        if len > 0 {
            v.words[0] = value & tail_mask(len);
        }
        v
    }

    /// Creates a vector of length `len` directly from packed `u64` words
    /// (bit `i` lives in word `i / 64`, bit `i % 64`). Bits beyond `len`
    /// in the last word are cleared, preserving the tail invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count must match the bit length"
        );
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        Self { len, words }
    }

    /// The packed `u64` words backing this vector (bit `i` lives in word
    /// `i / 64`, bit `i % 64`; bits beyond `len` are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words for in-crate word-parallel
    /// kernels. Callers must preserve the tail invariant (bits beyond
    /// `len` stay zero).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of backing words (`len().div_ceil(64)`).
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Resets the vector to all-zero bits of length `len`, reusing the
    /// existing word allocation when possible (hot-path friendly).
    pub fn clear_resize(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Overwrites backing word `index` wholesale (bits `64·index ..
    /// 64·index + 64`); bits beyond `len` are masked off. The word-granular
    /// writer for callers assembling packed vectors 64 bits at a time.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_word(&mut self, index: usize, word: u64) {
        let masked = if index + 1 == self.words.len() {
            word & tail_mask(self.len)
        } else {
            word
        };
        self.words[index] = masked;
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// XOR-accumulates `other` into `self` (element-wise GF(2) addition).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns the element-wise XOR of two vectors.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns the element-wise AND of two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch in and");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        out
    }

    /// Number of set bits (Hamming weight).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in hamming_distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Dot product over GF(2) (parity of the AND of the two vectors).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in dot");
        let ones: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum();
        ones % 2 == 1
    }

    /// Concatenates two vectors (word-shifted, no per-bit loop).
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        out.or_range(self.len, other);
        out
    }

    /// ORs `src` into `self` starting at bit `offset` (word-parallel).
    /// Since the destination region usually holds zeros this doubles as a
    /// "write sub-vector" primitive for assembling codewords.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn or_range(&mut self, offset: usize, src: &BitVec) {
        assert!(
            offset + src.len <= self.len,
            "or_range: {} + {} exceeds {}",
            offset,
            src.len,
            self.len
        );
        let base = offset / 64;
        let shift = offset % 64;
        for (i, &w) in src.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            self.words[base + i] |= w << shift;
            if shift != 0 && base + i + 1 < self.words.len() {
                self.words[base + i + 1] |= w >> (64 - shift);
            }
        }
    }

    /// Returns the sub-vector covering `range` (word-shifted extraction).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "slice out of range");
        let len = range.len();
        let mut out = BitVec::zeros(len);
        let base = range.start / 64;
        let shift = range.start % 64;
        for i in 0..out.words.len() {
            let lo = self.words[base + i] >> shift;
            let hi = if shift != 0 && base + i + 1 < self.words.len() {
                self.words[base + i + 1] << (64 - shift)
            } else {
                0
            };
            out.words[i] = lo | hi;
        }
        if let Some(last) = out.words.last_mut() {
            *last &= tail_mask(len);
        }
        out
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Converts to a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Interprets the first `min(len, 64)` bits as a little-endian integer.
    pub fn to_u64(&self) -> u64 {
        let mut out = 0u64;
        for i in 0..self.len.min(64) {
            if self.get(i) {
                out |= 1 << i;
            }
        }
        out
    }

    /// Indices of the set bits.
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Iterates over the indices of the set bits using word-level
    /// `trailing_zeros` scans (cost scales with the popcount, not the
    /// length — the hot-path companion of [`Self::ones`]).
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over the indices where `self` and `other` differ — an
    /// XOR-then-`trailing_zeros` scan that never materializes the XOR
    /// vector. The word-parallel way to find correction write-back
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn diff_ones<'a>(&'a self, other: &'a BitVec) -> DiffOnes<'a> {
        assert_eq!(self.len, other.len, "length mismatch in diff_ones");
        DiffOnes {
            a: &self.words,
            b: &other.words,
            word_index: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(&x), Some(&y)) => x ^ y,
                _ => 0,
            },
        }
    }
}

/// Iterator over differing-bit indices; see [`BitVec::diff_ones`].
#[derive(Debug, Clone)]
pub struct DiffOnes<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for DiffOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_index] ^ self.b[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

/// Lane-parallel (bit-sliced) helpers over `u64` words.
///
/// In the transposed layout used by the sliced Monte Carlo backend, bit `k`
/// of a word belongs to *independent lane `k`* (one Monte Carlo trial per
/// lane), so one word operation advances all 64 lanes at once. These
/// helpers are the GF(2) kernels that layout needs: lane validity masks for
/// ragged tails, the 3-way majority vote (TRiM), and the bit-sliced
/// "at least three inputs are 0" threshold (the THR gate / XOR fold).
pub mod lanes {
    /// Number of independent lanes a `u64` word carries.
    pub const LANES: usize = 64;

    /// Mask selecting the low `count` lanes (the valid lanes of a ragged
    /// batch tail).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn lane_mask(count: usize) -> u64 {
        assert!(count <= LANES, "at most {LANES} lanes per word");
        if count == LANES {
            u64::MAX
        } else {
            (1u64 << count) - 1
        }
    }

    /// Lane-parallel 3-way majority: bit `k` of the result is the majority
    /// of bit `k` of `a`, `b` and `c`.
    #[inline]
    pub fn majority3(a: u64, b: u64, c: u64) -> u64 {
        (a & b) | (a & c) | (b & c)
    }

    /// Lane-parallel threshold: bit `k` of the result is 1 when at least
    /// three of the input words have bit `k` equal to **0** — the PiM THR
    /// gate's switching condition, evaluated for all lanes at once via a
    /// sticky bit-sliced 2-bit counter.
    #[inline]
    pub fn at_least_three_zeros<I: IntoIterator<Item = u64>>(inputs: I) -> u64 {
        let (mut c0, mut c1, mut ge3) = (0u64, 0u64, 0u64);
        for word in inputs {
            let zero = !word;
            let carry = c0 & zero;
            c0 ^= zero;
            c1 |= carry;
            ge3 |= c1 & c0;
        }
        ge3
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lane_masks_select_low_lanes() {
            assert_eq!(lane_mask(0), 0);
            assert_eq!(lane_mask(1), 1);
            assert_eq!(lane_mask(17), (1 << 17) - 1);
            assert_eq!(lane_mask(64), u64::MAX);
        }

        #[test]
        #[should_panic(expected = "at most 64 lanes")]
        fn oversized_lane_mask_panics() {
            lane_mask(65);
        }

        #[test]
        fn majority3_matches_per_lane_reference() {
            let a = 0b1100u64;
            let b = 0b1010u64;
            let c = 0b1001u64;
            let m = majority3(a, b, c);
            for lane in 0..4 {
                let bits = ((a >> lane) & 1) + ((b >> lane) & 1) + ((c >> lane) & 1);
                assert_eq!((m >> lane) & 1, u64::from(bits >= 2), "lane {lane}");
            }
        }

        #[test]
        fn threshold_matches_per_lane_zero_count() {
            // Pseudo-random words, arities 3..=6, checked lane by lane.
            let words: Vec<u64> = (1u64..=6)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
                .collect();
            for arity in 3..=words.len() {
                let got = at_least_three_zeros(words[..arity].iter().copied());
                for lane in 0..LANES {
                    let zeros = words[..arity]
                        .iter()
                        .filter(|w| (*w >> lane) & 1 == 0)
                        .count();
                    assert_eq!(
                        (got >> lane) & 1,
                        u64::from(zeros >= 3),
                        "arity {arity} lane {lane}"
                    );
                }
            }
        }
    }
}

/// Mask selecting the valid bits of the last word of a length-`len` vector.
#[inline]
fn tail_mask(len: usize) -> u64 {
    match len % 64 {
        0 => u64::MAX,
        r => (1u64 << r) - 1,
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bits)
    }
}

/// A dense matrix over GF(2), stored row-major as [`BitVec`] rows.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![BitVec::zeros(cols); rows],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// # use nvpim_ecc::gf2::BitMatrix;
    /// let eye = BitMatrix::identity(4);
    /// assert_eq!(eye.rank(), 4);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows of booleans.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have the same length"
        );
        Self {
            rows: rows.len(),
            cols: ncols,
            data: rows.iter().map(|r| BitVec::from_bools(r)).collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.data[row].get(col)
    }

    /// Sets the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.data[row].set(col, value);
    }

    /// Borrows row `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, row: usize) -> &BitVec {
        &self.data[row]
    }

    /// Returns column `col` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn column(&self, col: usize) -> BitVec {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(c, r, true);
                }
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hconcat(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows, other.rows, "row count mismatch in hconcat");
        let mut out = BitMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r] = self.data[r].concat(&other.data[r]);
        }
        out
    }

    /// Matrix–vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows).map(|r| self.data[r].dot(v)).collect()
    }

    /// Vector–matrix product `v · M` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != nrows()`.
    pub fn vec_mul(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.rows, "dimension mismatch in vec_mul");
        let mut acc = BitVec::zeros(self.cols);
        for r in 0..self.rows {
            if v.get(r) {
                acc.xor_assign(&self.data[r]);
            }
        }
        acc
    }

    /// Matrix–matrix product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = BitMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            out.data[r] = other.vec_mul(&self.data[r]);
        }
        out
    }

    /// Rank of the matrix (by Gaussian elimination).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank >= m.rows {
                break;
            }
            // Find a pivot row with a 1 in this column at or below `rank`.
            let pivot = (rank..m.rows).find(|&r| m.get(r, col));
            let Some(pivot) = pivot else { continue };
            m.data.swap(rank, pivot);
            let pivot_row = m.data[rank].clone();
            for r in 0..m.rows {
                if r != rank && m.get(r, col) {
                    m.data[r].xor_assign(&pivot_row);
                }
            }
            rank += 1;
        }
        rank
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(BitVec::is_zero)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {}", self.data[r])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_set_get_flip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn bitvec_xor_and_dot() {
        let a = BitVec::from_bools(&[true, true, false, true]);
        let b = BitVec::from_bools(&[true, false, false, true]);
        assert_eq!(a.xor(&b), BitVec::from_bools(&[false, true, false, false]));
        assert_eq!(a.and(&b), BitVec::from_bools(&[true, false, false, true]));
        // dot = parity(1*1 + 1*0 + 0*0 + 1*1) = parity(2) = 0
        assert!(!a.dot(&b));
        assert_eq!(a.hamming_distance(&b), 1);
    }

    #[test]
    fn bitvec_from_to_u64_roundtrip() {
        let v = BitVec::from_u64(0b1011_0101, 8);
        assert_eq!(v.to_u64(), 0b1011_0101);
        assert_eq!(v.ones(), vec![0, 2, 4, 5, 7]);
    }

    #[test]
    fn bitvec_concat_slice() {
        let a = BitVec::from_bools(&[true, false]);
        let b = BitVec::from_bools(&[false, true, true]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.to_bools(), vec![true, false, false, true, true]);
        assert_eq!(c.slice(2..5), b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitvec_get_out_of_range_panics() {
        let v = BitVec::zeros(4);
        let _ = v.get(4);
    }

    #[test]
    fn word_level_slice_concat_match_per_bit_reference() {
        // Exercise unaligned offsets across word boundaries.
        let a: BitVec = (0..137).map(|i| (i * 7) % 3 == 0).collect();
        let b: BitVec = (0..71).map(|i| (i * 5) % 4 == 1).collect();
        let cat = a.concat(&b);
        assert_eq!(cat.len(), 208);
        for i in 0..a.len() {
            assert_eq!(cat.get(i), a.get(i), "bit {i}");
        }
        for i in 0..b.len() {
            assert_eq!(cat.get(a.len() + i), b.get(i), "bit {i}");
        }
        for range in [0..137, 3..69, 60..137, 64..128, 1..208, 130..201] {
            let s = cat.slice(range.clone());
            for (j, i) in range.enumerate() {
                assert_eq!(s.get(j), cat.get(i), "range bit {i}");
            }
        }
    }

    #[test]
    fn or_range_writes_subvectors_in_place() {
        let mut v = BitVec::zeros(200);
        let part: BitVec = (0..71).map(|i| i % 2 == 0).collect();
        v.or_range(65, &part);
        for i in 0..200 {
            let expected = (65..136).contains(&i) && (i - 65) % 2 == 0;
            assert_eq!(v.get(i), expected, "bit {i}");
        }
    }

    #[test]
    fn from_words_masks_the_tail_and_roundtrips() {
        let v = BitVec::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.words()[1], (1 << 6) - 1, "tail bits must be cleared");
        let w = BitVec::from_words(v.words().to_vec(), 70);
        assert_eq!(v, w);
    }

    #[test]
    fn set_word_masks_the_tail() {
        let mut v = BitVec::zeros(70);
        v.set_word(0, 0xDEAD_BEEF);
        v.set_word(1, u64::MAX);
        assert_eq!(v.words()[0], 0xDEAD_BEEF);
        assert_eq!(v.words()[1], (1 << 6) - 1);
    }

    #[test]
    fn iter_ones_and_diff_ones_scan_word_parallel() {
        let a: BitVec = (0..300).map(|i| i % 67 == 3).collect();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), a.ones());
        assert_eq!(
            a.ones(),
            (0..300).filter(|i| i % 67 == 3).collect::<Vec<_>>()
        );
        let mut b = a.clone();
        b.flip(0);
        b.flip(64);
        b.flip(299);
        assert_eq!(a.diff_ones(&b).collect::<Vec<_>>(), vec![0, 64, 299]);
        assert_eq!(a.diff_ones(&a).count(), 0);
    }

    #[test]
    fn matrix_identity_mul() {
        let eye = BitMatrix::identity(5);
        let v = BitVec::from_bools(&[true, false, true, true, false]);
        assert_eq!(eye.mul_vec(&v), v);
        assert_eq!(eye.mul(&eye), eye);
    }

    #[test]
    fn matrix_transpose_involution() {
        let m = BitMatrix::from_rows(&[vec![true, false, true], vec![false, true, true]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().nrows(), 3);
        assert_eq!(m.column(2).to_bools(), vec![true, true]);
    }

    #[test]
    fn matrix_mul_associative_small() {
        let a = BitMatrix::from_rows(&[vec![true, true], vec![false, true]]);
        let b = BitMatrix::from_rows(&[vec![true, false], vec![true, true]]);
        let c = BitMatrix::from_rows(&[vec![false, true], vec![true, true]]);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn matrix_rank() {
        let m = BitMatrix::from_rows(&[
            vec![true, false, true],
            vec![true, false, true],
            vec![false, true, false],
        ]);
        assert_eq!(m.rank(), 2);
        assert_eq!(BitMatrix::identity(7).rank(), 7);
        assert_eq!(BitMatrix::zeros(3, 3).rank(), 0);
    }

    #[test]
    fn matrix_vec_mul_matches_transpose_mul_vec() {
        let m = BitMatrix::from_rows(&[
            vec![true, false, true, true],
            vec![false, true, true, false],
        ]);
        let v = BitVec::from_bools(&[true, true]);
        assert_eq!(m.vec_mul(&v), m.transpose().mul_vec(&v));
    }
}
