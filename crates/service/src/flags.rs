//! Minimal `--flag value` argument scanning shared by the workspace's
//! binaries (`nvpim-serviced`, `nvpim-cli`, the harness binaries) so the
//! same positional logic isn't copy-pasted per binary.

/// The value following `flag`, if both are present.
pub fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether `flag` appears at all.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scans_values_and_presence() {
        let args = argv(&["bin", "--addr", "127.0.0.1:0", "--wait"]);
        assert_eq!(value_of(&args, "--addr").as_deref(), Some("127.0.0.1:0"));
        assert_eq!(value_of(&args, "--missing"), None);
        // A trailing value-less flag yields None, not a panic.
        assert_eq!(value_of(&args, "--wait"), None);
        assert!(has_flag(&args, "--wait"));
        assert!(!has_flag(&args, "--quick"));
    }
}
