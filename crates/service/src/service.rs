//! The campaign service: worker pool, shared caches, job bookkeeping.
//!
//! [`ServiceHandle`] is the in-process API; the TCP layer
//! ([`crate::server`]) is a thin codec over exactly these methods, so
//! tests exercising the handle cover the same code path as network
//! clients.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use nvpim_sweep::{
    execution_backend, prepare_campaign_with_telemetry, CampaignControl, CampaignKind,
    ChunkCheckpoint, EstimatorMode, ExecutionBackend, ScheduleCache, SimBackend, SweepError,
    SweepPlan, TrialOutcome,
};
use nvpim_telemetry::{Counter as TelemetryCounter, EventLog, Phase, Telemetry};
use serde::{Serialize, Value};

use crate::job::{JobCore, JobId, JobState};
use crate::journal::{self, Journal, JournalRecord, ReplayedTerminal};
use crate::queue::BoundedPriorityQueue;
use crate::store::ReportStore;
use crate::ServiceError;

/// Locks a mutex, recovering from poison: every unlock point in this
/// module leaves the protected state consistent, and a contained worker
/// panic must not wedge the rest of the service behind a poisoned lock.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tunables for a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing campaigns.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions are
    /// rejected with `queue_full` (backpressure).
    pub queue_capacity: usize,
    /// Trials per execution chunk — the granularity of progress events and
    /// cancellation checks. Chunking never affects report bytes.
    pub chunk_trials: usize,
    /// Soft cap on tracked job records. When exceeded, the oldest
    /// *terminal* jobs are evicted (their ids then answer `unknown_job`);
    /// queued/running jobs are never evicted. Bounds daemon memory under
    /// sustained traffic.
    pub max_tracked_jobs: usize,
    /// Cap on cached reports in the content-addressed store (reports are
    /// the dominant allocation); beyond it the oldest-inserted report is
    /// evicted and its plan recomputes — byte-identically — on
    /// resubmission.
    pub max_cached_reports: usize,
    /// Simulation backend campaigns run on. Reports are byte-identical
    /// across backends (so the content-addressed store stays valid if this
    /// changes between restarts); `Sliced` is the 64-trials-per-word
    /// default.
    pub backend: SimBackend,
    /// Opt-in structured NDJSON event log: when set, the service appends
    /// one event per job transition (and per executed chunk) to this file,
    /// each line carrying a `trace` id correlating a job's whole history.
    /// `None` (the default) logs nothing.
    pub log_json: Option<std::path::PathBuf>,
    /// Durable-state directory. When set, the service keeps a write-ahead
    /// job journal (`jobs.journal`) and a disk-backed report store
    /// (`reports/`) under it: on startup the journal is replayed,
    /// completed reports are restored, and in-flight campaigns resume
    /// from their last checkpointed chunk — byte-identically, thanks to
    /// chunk invariance. `None` (the default) keeps all state in memory.
    pub state_dir: Option<std::path::PathBuf>,
    /// Retry budget per job for *panicking* attempts: a chunk that panics
    /// (a buggy scheme plugin, say) is contained by `catch_unwind` and the
    /// job retried from its last checkpoint up to this many times before
    /// failing terminally. Deterministic `SweepError`s never retry.
    pub max_job_retries: u32,
    /// Base delay between retry attempts; attempt `n` waits
    /// `retry_backoff_ms << (n - 1)` (exponential backoff).
    pub retry_backoff_ms: u64,
    /// Journal fsync cadence: sync to stable storage after every N
    /// appended records (`1` = every record, the durable default; `0` =
    /// leave flush timing to the OS).
    pub journal_fsync_records: u64,
    /// Execution-backend override for every campaign this service runs,
    /// taking precedence over [`backend`](Self::backend) when set. The
    /// seam the chaos suite injects its panicking backend through; `None`
    /// (the default) resolves [`backend`](Self::backend) normally.
    pub execution_backend: Option<&'static dyn ExecutionBackend>,
    /// Graceful-drain budget for shutdown. `None` (the default) keeps the
    /// legacy behaviour: shutdown runs every queued job to completion
    /// before exiting. `Some(ms)` switches shutdown to a *drain*: new
    /// work is rejected, running jobs stop at their next chunk boundary
    /// (their checkpoints already journaled), queued jobs are abandoned
    /// to journal replay, and the daemon exits within roughly this budget
    /// even if a job is wedged. Health probes (`ping`) report
    /// `draining: true` throughout so fleet coordinators treat the node
    /// as unschedulable rather than dead.
    pub shutdown_grace_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            chunk_trials: 64,
            max_tracked_jobs: 4096,
            max_cached_reports: crate::store::DEFAULT_REPORT_CAPACITY,
            backend: SimBackend::default(),
            log_json: None,
            state_dir: None,
            max_job_retries: 2,
            retry_backoff_ms: 50,
            journal_fsync_records: 1,
            execution_backend: None,
            shutdown_grace_ms: None,
        }
    }
}

/// What `submit` tells the client about its new job.
#[derive(Debug, Clone, Serialize)]
pub struct SubmitOutcome {
    /// The job id to poll.
    pub job: JobId,
    /// Content digest of the submitted plan.
    pub digest: String,
    /// Served instantly from the content-addressed report store.
    pub cached: bool,
    /// Attached to an identical in-flight job instead of queueing a new
    /// campaign.
    pub coalesced: bool,
    /// Total trials the campaign runs.
    pub trials_total: u64,
}

/// A job-status snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    /// The queried job id.
    pub job: JobId,
    /// Lifecycle state label (`queued`/`running`/`done`/`failed`/`cancelled`).
    pub state: String,
    /// Completion percentage in `[0, 100]`.
    pub percent: f64,
    /// Trials completed so far.
    pub trials_done: u64,
    /// Total trials.
    pub trials_total: u64,
    /// Observed trial throughput of this campaign: completed trials per
    /// second of running wall time, frozen at the value reached when the
    /// job went terminal. `None` (wire `null`) for jobs that never ran —
    /// queued, cancelled while queued, or served from the report cache.
    pub trials_per_sec: Option<f64>,
    /// Plan content digest.
    pub digest: String,
    /// Whether the job was served from the report cache at submit time.
    pub cached: bool,
    /// Failure description when `state == "failed"`.
    pub error: Option<String>,
}

/// Aggregate service counters (the `stats` command payload).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceStats {
    /// Worker threads.
    pub workers: usize,
    /// Simulation backend campaigns run on (`"scalar"` or `"sliced"`).
    pub backend: String,
    /// Monte Carlo trials executed across all campaigns (cache hits and
    /// coalesced submissions recompute nothing and add nothing here).
    pub trials_executed: u64,
    /// Lifetime trial throughput: executed trials divided by total
    /// campaign wall time across the worker pool. `None` (wire `null`)
    /// until the first campaign accrues measurable wall time — a fresh
    /// service has no data, which is different from a measured rate of 0.
    pub trials_per_sec: Option<f64>,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Total submissions accepted (including cached and coalesced).
    pub jobs_submitted: u64,
    /// Campaigns run to completion.
    pub jobs_completed: u64,
    /// Campaigns that failed to run.
    pub jobs_failed: u64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: u64,
    /// Submissions attached to an identical in-flight job.
    pub jobs_coalesced: u64,
    /// Submissions rejected by queue backpressure.
    pub jobs_rejected: u64,
    /// Job attempts retried after a contained panic.
    pub jobs_retried: u64,
    /// Jobs restored from the durable journal at startup (terminal and
    /// resumed in-flight jobs alike).
    pub recovered_jobs: u64,
    /// Checkpointed chunks whose outcomes were resumed — not recomputed —
    /// when in-flight campaigns were restarted from the journal.
    pub resumed_chunks: u64,
    /// Journal records successfully replayed at startup.
    pub journal_records_replayed: u64,
    /// Shard ranges executed to completion for a fleet coordinator (the
    /// `run_shard` protocol command).
    pub shards_executed: u64,
    /// Distinct reports in the content-addressed store.
    pub report_cache_entries: usize,
    /// Submissions served byte-identically from the store.
    pub report_cache_hits: u64,
    /// Store lookups that missed.
    pub report_cache_misses: u64,
    /// Distinct compiled schedules in the shared cache.
    pub schedule_cache_entries: usize,
    /// Schedule lookups served without compiling.
    pub schedule_cache_hits: u64,
    /// Schedule lookups that compiled.
    pub schedule_cache_compiles: u64,
    /// Submissions whose plan requested the stratified rare-event
    /// estimator (counted at acceptance, including cached and coalesced
    /// submissions — the demand signal, not the work done).
    pub estimator_jobs: u64,
    /// Submissions whose plan ran the inference-accuracy campaign kind
    /// (counted at acceptance, like [`estimator_jobs`](Self::estimator_jobs)).
    pub accuracy_jobs: u64,
    /// Accuracy-campaign trials that produced a prediction, across all
    /// campaigns (resumed checkpoints are not re-counted).
    pub accuracy_trials_evaluated: u64,
    /// Of those, trials whose prediction matched the clean model's.
    pub accuracy_trials_correct: u64,
    /// Trials settled by the analytic zero-fault fast path without
    /// executing a gate (first-class telemetry counter).
    pub clean_settled_trials: u64,
    /// Whole 64-lane batches settled by the analytic zero-fault fast path.
    pub clean_settled_batches: u64,
    /// Trials/lanes redrawn into the at-least-one-fault stratum by the
    /// stratified estimator.
    pub estimator_redraws: u64,
    /// Queue-wait latency summary (submission → worker pickup), `None`
    /// until the first job is picked up.
    pub queue_wait: Option<LatencySummary>,
    /// Job run-latency summary (worker pickup → terminal), `None` until
    /// the first campaign finishes.
    pub run_latency: Option<LatencySummary>,
}

/// Deterministic percentile summary of a service latency histogram
/// (log2-bucketed: quantiles are bucket upper bounds, in microseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Median, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile, microseconds (bucket upper bound).
    pub p95_us: u64,
    /// 99th percentile, microseconds (bucket upper bound).
    pub p99_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

impl LatencySummary {
    /// Builds a summary from a nanosecond-valued histogram, or `None` when
    /// it has no observations.
    fn from_nanos_histogram(hist: &nvpim_telemetry::Histogram) -> Option<Self> {
        if hist.count() == 0 {
            return None;
        }
        let to_us = |q: f64| hist.quantile(q).unwrap_or(0) / 1_000;
        Some(Self {
            count: hist.count(),
            p50_us: to_us(0.50),
            p95_us: to_us(0.95),
            p99_us: to_us(0.99),
            mean_us: hist.mean().unwrap_or(0.0) / 1_000.0,
        })
    }
}

struct WorkItem {
    core: Arc<JobCore>,
    plan: SweepPlan,
    /// Outcomes restored from journal checkpoints: the campaign resumes
    /// after this prefix instead of recomputing it. Empty for fresh jobs.
    resume: Vec<TrialOutcome>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    /// Trials actually executed (completed + the partial progress of
    /// cancelled campaigns).
    trials_executed: AtomicU64,
    /// Total campaign wall time across the worker pool, in nanoseconds.
    busy_nanos: AtomicU64,
    /// Accepted submissions whose plan ran in stratified estimator mode.
    estimator_jobs: AtomicU64,
    /// Accepted submissions whose plan ran the accuracy campaign kind.
    accuracy_jobs: AtomicU64,
    /// Accuracy trials that produced a prediction (newly executed only).
    accuracy_evaluated: AtomicU64,
    /// Of those, predictions matching the clean model's.
    accuracy_correct: AtomicU64,
    /// Job attempts retried after a contained panic.
    retried: AtomicU64,
    /// Jobs restored from the journal at startup.
    recovered: AtomicU64,
    /// Checkpointed chunks resumed instead of recomputed.
    resumed_chunks: AtomicU64,
    /// Journal records replayed at startup.
    journal_replayed: AtomicU64,
    /// Shard ranges executed to completion (`run_shard`).
    shards_executed: AtomicU64,
}

struct Inner {
    cfg: ServiceConfig,
    queue: BoundedPriorityQueue<WorkItem>,
    jobs: Mutex<HashMap<JobId, Arc<JobCore>>>,
    /// digest → in-flight (queued or running) core, for coalescing.
    active: Mutex<HashMap<String, Arc<JobCore>>>,
    /// One process-wide schedule cache shared by every job.
    schedule_cache: Mutex<ScheduleCache>,
    store: Mutex<ReportStore>,
    next_id: AtomicU64,
    counters: Counters,
    shutting_down: AtomicBool,
    /// Set by [`ServiceHandle::begin_drain`]: the daemon is still serving
    /// reads (`status`/`result`/`stats`/`ping`) but accepts no new work
    /// and is checkpointing in-flight jobs for a bounded exit.
    draining: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Always-enabled telemetry sink shared by every campaign this service
    /// runs: pipeline phase timings, first-class counters, per-scheme /
    /// per-backend trial counters and the queue-wait / run-latency
    /// histograms all land here.
    telemetry: Telemetry,
    /// Opt-in NDJSON event log (see [`ServiceConfig::log_json`]).
    event_log: Option<EventLog>,
    /// Write-ahead job journal (see [`ServiceConfig::state_dir`]).
    journal: Option<Mutex<Journal>>,
}

/// The `retry_after_ms` hint attached to an overload rejection: the
/// median observed campaign run latency times the queue depth, divided
/// across the worker pool — a rough estimate of when a queue slot frees
/// up — clamped to a sane band. With no latency data yet (a cold daemon
/// slammed at startup), a fixed 100 ms placeholder applies.
fn overload_retry_hint_ms(inner: &Inner) -> u64 {
    let snapshot = inner.telemetry.snapshot();
    let p50_ms = snapshot
        .histograms
        .get("run_latency_ns")
        .and_then(|hist| hist.quantile(0.50))
        .map_or(100, |ns| ns / 1_000_000);
    let depth = inner.queue.len().max(1) as u64;
    let workers = inner.cfg.workers.max(1) as u64;
    p50_ms
        .max(1)
        .saturating_mul(depth)
        .div_ceil(workers)
        .clamp(10, 10_000)
}

/// The event-log trace id correlating every event of one job: the primary
/// job id plus the leading 8 hex chars of the plan digest.
fn trace_id(job: JobId, digest: &str) -> String {
    format!("job-{job}-{}", &digest[..digest.len().min(8)])
}

impl Inner {
    fn emit_event(&self, job: JobId, digest: &str, event: &str, fields: Vec<(String, Value)>) {
        if let Some(log) = &self.event_log {
            log.emit(event, &trace_id(job, digest), fields);
        }
    }

    /// Appends one record to the write-ahead journal (a no-op without a
    /// state dir). A failed append degrades durability, never service:
    /// the error is reported and the in-memory state machine proceeds.
    fn journal_append(&self, record: &JournalRecord) {
        if let Some(journal) = &self.journal {
            if let Err(err) = lock_unpoisoned(journal).append(record) {
                eprintln!("nvpim-serviced: journal append failed: {err}");
            }
        }
    }

    /// The execution backend campaigns run on: the configured override,
    /// or the standard resolution of the `SimBackend` selector.
    fn backend(&self) -> &'static dyn ExecutionBackend {
        self.cfg
            .execution_backend
            .unwrap_or_else(|| execution_backend(self.cfg.backend))
    }
}

/// Cloneable handle to a running service (see module docs).
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("workers", &self.inner.cfg.workers)
            .field("queue_depth", &self.inner.queue.len())
            .finish()
    }
}

impl ServiceHandle {
    /// Starts a service: spawns the worker pool and returns the handle.
    ///
    /// With [`ServiceConfig::state_dir`] set, startup first replays the
    /// write-ahead journal: terminal jobs are restored as queryable
    /// records (completed reports re-verified out of the durable store),
    /// and in-flight jobs are re-queued with their checkpointed outcome
    /// prefixes so only un-checkpointed trials recompute.
    pub fn start(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        let event_log = cfg.log_json.as_deref().and_then(|path| {
            EventLog::create(path)
                .map_err(|e| eprintln!("nvpim-service: cannot open event log {path:?}: {e}"))
                .ok()
        });
        let (store, journal, replay) = match cfg.state_dir.as_deref() {
            None => (
                ReportStore::with_capacity(cfg.max_cached_reports),
                None,
                None,
            ),
            Some(dir) => {
                let store = ReportStore::persistent(cfg.max_cached_reports, dir.join("reports"))
                    .unwrap_or_else(|err| {
                        eprintln!(
                            "nvpim-serviced: cannot open report store under {dir:?} \
                             ({err}); continuing without persistence"
                        );
                        ReportStore::with_capacity(cfg.max_cached_reports)
                    });
                let journal_path = dir.join(journal::JOURNAL_FILE);
                let replay = journal::replay(&journal_path)
                    .map_err(|err| {
                        eprintln!("nvpim-serviced: journal replay failed: {err}");
                    })
                    .ok();
                let journal = Journal::open(&journal_path, cfg.journal_fsync_records)
                    .map_err(|err| {
                        eprintln!(
                            "nvpim-serviced: cannot open journal {journal_path:?} \
                             ({err}); continuing without durability"
                        );
                    })
                    .ok()
                    .map(Mutex::new);
                (store, journal, replay)
            }
        };
        let next_id = replay.as_ref().map_or(1, |r| r.next_id);
        let inner = Arc::new(Inner {
            queue: BoundedPriorityQueue::new(cfg.queue_capacity),
            cfg: ServiceConfig { workers, ..cfg },
            jobs: Mutex::new(HashMap::new()),
            active: Mutex::new(HashMap::new()),
            schedule_cache: Mutex::new(ScheduleCache::new()),
            store: Mutex::new(store),
            next_id: AtomicU64::new(next_id),
            counters: Counters::default(),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            telemetry: Telemetry::new(),
            event_log,
            journal,
        });
        if let Some(replay) = replay {
            restore_replayed_jobs(&inner, replay);
        }
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nvpim-worker-{i}"))
                    .spawn(move || worker_loop(&inner2))
                    .expect("spawn worker thread"),
            );
        }
        *lock_unpoisoned(&inner.workers) = handles;
        Self { inner }
    }

    /// Submits a campaign plan at `priority` (0–9, higher runs first).
    ///
    /// Fast paths, in order: a content-addressed report-store hit returns a
    /// job that is already `Done` (zero recompute); an identical in-flight
    /// plan coalesces onto the running job. Otherwise the plan is queued.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`], [`ServiceError::InvalidPlan`] and —
    /// the backpressure signal — [`ServiceError::Overloaded`].
    pub fn submit(&self, plan: SweepPlan, priority: u8) -> Result<SubmitOutcome, ServiceError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) || inner.draining.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        plan.validate().map_err(ServiceError::InvalidPlan)?;
        if plan.estimator != EstimatorMode::Exact {
            inner
                .counters
                .estimator_jobs
                .fetch_add(1, Ordering::Relaxed);
        }
        if plan.kind == CampaignKind::Accuracy {
            inner.counters.accuracy_jobs.fetch_add(1, Ordering::Relaxed);
        }
        let digest = plan.content_digest();
        let trials_total = plan.trial_count();
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);

        // 1. Content-addressed report cache.
        if let Some(report) = lock_unpoisoned(&inner.store).get(&digest) {
            let core = JobCore::done_from_cache(id, digest.clone(), trials_total, report);
            let mut jobs = lock_unpoisoned(&inner.jobs);
            jobs.insert(id, core);
            evict_terminal_jobs(&mut jobs, inner.cfg.max_tracked_jobs, id);
            drop(jobs);
            inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
            inner.emit_event(
                id,
                &digest,
                "submitted",
                vec![
                    ("cached".to_string(), Value::Bool(true)),
                    ("trials_total".to_string(), Value::UInt(trials_total)),
                ],
            );
            return Ok(SubmitOutcome {
                job: id,
                digest,
                cached: true,
                coalesced: false,
                trials_total,
            });
        }

        // 2. Coalesce with an identical in-flight job, or queue a new one.
        // The coalesce check, in-flight registration AND the queue push all
        // happen under the `active` lock: a racing identical submitter can
        // therefore never attach to a job whose push is about to fail (it
        // would observe either no entry, or an entry that is durably
        // queued), and two racing submitters cannot both queue one digest.
        let core = {
            let mut active = lock_unpoisoned(&inner.active);
            // A terminal core can linger here (cancelled-while-queued jobs
            // stay registered until a worker pops their stale queue item);
            // coalescing onto it — or onto a running job whose cancellation
            // is already requested — would hand this client a cancellation
            // it never asked for, so only live, uncancelled cores coalesce.
            match active.get(&digest) {
                Some(existing)
                    if !existing.state().is_terminal() && !existing.cancel_requested() =>
                {
                    let existing = Arc::clone(existing);
                    let primary = existing.id;
                    lock_unpoisoned(&inner.jobs).insert(id, existing);
                    inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                    inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    inner.emit_event(
                        id,
                        &digest,
                        "coalesced",
                        vec![("onto_job".to_string(), Value::UInt(primary))],
                    );
                    return Ok(SubmitOutcome {
                        job: id,
                        digest,
                        cached: false,
                        coalesced: true,
                        trials_total,
                    });
                }
                _ => {}
            }
            let core = JobCore::new(id, digest.clone(), trials_total);
            // Write-ahead: the submit record lands in the journal before
            // the item becomes poppable, so a worker's `start`/`chunk`
            // records can never precede it. Appending under the `active`
            // lock also serializes journal order across racing submitters.
            inner.journal_append(&JournalRecord::Submit {
                job: id,
                digest: digest.clone(),
                priority: u64::from(priority.min(9)),
                trials_total,
                plan_json: plan.canonical_json(),
            });
            let item = WorkItem {
                core: Arc::clone(&core),
                plan,
                resume: Vec::new(),
            };
            // Backpressure on overflow. (Lock order is `active` → queue
            // mutex; workers only take `active` after `pop` has released
            // the queue mutex, so this cannot deadlock.)
            if inner.queue.try_push(item, priority.min(9)).is_err() {
                // Void the write-ahead record: without this, a replay
                // would resurrect a job the client was told to retry.
                inner.journal_append(&JournalRecord::Cancelled { job: id });
                drop(active);
                if inner.shutting_down.load(Ordering::SeqCst)
                    || inner.draining.load(Ordering::SeqCst)
                {
                    return Err(ServiceError::ShuttingDown);
                }
                // Only genuine backpressure counts as a rejection; a push
                // refused by a closing queue is a shutdown, not load-shed.
                inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded {
                    retry_after_ms: overload_retry_hint_ms(inner),
                });
            }
            // May replace a stale terminal entry (see above).
            active.insert(digest.clone(), Arc::clone(&core));
            core
        };

        let mut jobs = lock_unpoisoned(&inner.jobs);
        jobs.insert(id, core);
        evict_terminal_jobs(&mut jobs, inner.cfg.max_tracked_jobs, id);
        drop(jobs);
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        inner.emit_event(
            id,
            &digest,
            "submitted",
            vec![
                ("cached".to_string(), Value::Bool(false)),
                ("trials_total".to_string(), Value::UInt(trials_total)),
                (
                    "queue_depth".to_string(),
                    Value::UInt(inner.queue.len() as u64),
                ),
            ],
        );
        Ok(SubmitOutcome {
            job: id,
            digest,
            cached: false,
            coalesced: false,
            trials_total,
        })
    }

    /// The shared core behind a job id.
    pub fn job(&self, job: JobId) -> Option<Arc<JobCore>> {
        lock_unpoisoned(&self.inner.jobs).get(&job).cloned()
    }

    /// A status snapshot for a job.
    pub fn status(&self, job: JobId) -> Result<JobStatus, ServiceError> {
        let core = self.job(job).ok_or(ServiceError::UnknownJob(job))?;
        let state = core.state();
        Ok(JobStatus {
            job,
            state: state.label().to_string(),
            percent: core.percent(),
            trials_done: core.trials_done(),
            trials_total: core.trials_total,
            trials_per_sec: core.trials_per_sec(),
            digest: core.digest.clone(),
            cached: core.from_cache,
            error: match state {
                JobState::Failed(e) => Some(e),
                _ => None,
            },
        })
    }

    /// The finished report JSON for a job, without waiting.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`], [`ServiceError::NotDone`] while the
    /// job is queued/running, [`ServiceError::JobFailed`] /
    /// [`ServiceError::JobCancelled`] for terminal failures.
    pub fn result(&self, job: JobId) -> Result<Arc<String>, ServiceError> {
        let core = self.job(job).ok_or(ServiceError::UnknownJob(job))?;
        match core.state() {
            JobState::Done => Ok(core.report().expect("done jobs carry a report")),
            JobState::Failed(e) => Err(ServiceError::JobFailed(e)),
            JobState::Cancelled => Err(ServiceError::JobCancelled),
            JobState::Queued | JobState::Running => Err(ServiceError::NotDone),
        }
    }

    /// Blocks until a job finishes (or `timeout` elapses) and returns its
    /// report JSON.
    ///
    /// # Errors
    ///
    /// As [`Self::result`]; [`ServiceError::NotDone`] means the timeout
    /// elapsed first.
    pub fn wait(&self, job: JobId, timeout: Option<Duration>) -> Result<Arc<String>, ServiceError> {
        let core = self.job(job).ok_or(ServiceError::UnknownJob(job))?;
        core.wait_terminal(timeout);
        self.result(job)
    }

    /// Requests cancellation of a job. Returns whether the request took
    /// effect (the job was not already terminal). Note that coalesced job
    /// ids share one campaign — cancelling any of them cancels it for all.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`].
    pub fn cancel(&self, job: JobId) -> Result<bool, ServiceError> {
        use crate::job::CancelOutcome;
        let core = self.job(job).ok_or(ServiceError::UnknownJob(job))?;
        match core.request_cancel() {
            CancelOutcome::AlreadyTerminal => Ok(false),
            // Running jobs are counted by the worker that observes the
            // cancelled run; counting here too would double-count.
            CancelOutcome::RunningFlagged => Ok(true),
            CancelOutcome::CancelledWhileQueued => {
                self.inner
                    .counters
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                self.inner
                    .journal_append(&JournalRecord::Cancelled { job: core.id });
                Ok(true)
            }
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let (sched_entries, sched_hits, sched_compiles) = {
            let cache = lock_unpoisoned(&inner.schedule_cache);
            (cache.len(), cache.hits(), cache.compiles())
        };
        let (store_entries, store_hits, store_misses) = {
            let store = lock_unpoisoned(&inner.store);
            (store.len(), store.hits(), store.misses())
        };
        let trials_executed = inner.counters.trials_executed.load(Ordering::Relaxed);
        let busy_secs = inner.counters.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let telemetry = inner.telemetry.snapshot();
        ServiceStats {
            workers: inner.cfg.workers,
            backend: inner.cfg.backend.to_string(),
            trials_executed,
            trials_per_sec: if busy_secs > 0.0 {
                Some(trials_executed as f64 / busy_secs)
            } else {
                None
            },
            queue_capacity: inner.queue.capacity(),
            queue_depth: inner.queue.len(),
            jobs_submitted: inner.counters.submitted.load(Ordering::Relaxed),
            jobs_completed: inner.counters.completed.load(Ordering::Relaxed),
            jobs_failed: inner.counters.failed.load(Ordering::Relaxed),
            jobs_cancelled: inner.counters.cancelled.load(Ordering::Relaxed),
            jobs_coalesced: inner.counters.coalesced.load(Ordering::Relaxed),
            jobs_rejected: inner.counters.rejected.load(Ordering::Relaxed),
            jobs_retried: inner.counters.retried.load(Ordering::Relaxed),
            recovered_jobs: inner.counters.recovered.load(Ordering::Relaxed),
            resumed_chunks: inner.counters.resumed_chunks.load(Ordering::Relaxed),
            journal_records_replayed: inner.counters.journal_replayed.load(Ordering::Relaxed),
            shards_executed: inner.counters.shards_executed.load(Ordering::Relaxed),
            report_cache_entries: store_entries,
            report_cache_hits: store_hits,
            report_cache_misses: store_misses,
            schedule_cache_entries: sched_entries,
            schedule_cache_hits: sched_hits,
            schedule_cache_compiles: sched_compiles,
            estimator_jobs: inner.counters.estimator_jobs.load(Ordering::Relaxed),
            accuracy_jobs: inner.counters.accuracy_jobs.load(Ordering::Relaxed),
            accuracy_trials_evaluated: inner.counters.accuracy_evaluated.load(Ordering::Relaxed),
            accuracy_trials_correct: inner.counters.accuracy_correct.load(Ordering::Relaxed),
            clean_settled_trials: telemetry.counter(TelemetryCounter::CleanSettledTrials),
            clean_settled_batches: telemetry.counter(TelemetryCounter::CleanSettledBatches),
            estimator_redraws: telemetry.counter(TelemetryCounter::EstimatorRedraws),
            queue_wait: telemetry
                .histograms
                .get("queue_wait_ns")
                .and_then(LatencySummary::from_nanos_histogram),
            run_latency: telemetry
                .histograms
                .get("run_latency_ns")
                .and_then(LatencySummary::from_nanos_histogram),
        }
    }

    /// The service's always-on telemetry sink (phase timings, first-class
    /// counters, per-scheme/per-backend trial counters, latency
    /// histograms).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Renders the full metrics payload as Prometheus-style text
    /// exposition: service-level job/queue/cache series first, then every
    /// telemetry series (phase timings, counters, latency summaries). The
    /// `metrics` protocol command returns exactly this text.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let stats = self.stats();
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP nvpim_{name} {help}");
            let _ = writeln!(out, "# TYPE nvpim_{name} counter");
            let _ = writeln!(out, "nvpim_{name} {value}");
        };
        counter(
            "jobs_submitted_total",
            "Submissions accepted (including cached and coalesced).",
            stats.jobs_submitted,
        );
        counter(
            "jobs_completed_total",
            "Campaigns run to completion.",
            stats.jobs_completed,
        );
        counter(
            "jobs_failed_total",
            "Campaigns that failed.",
            stats.jobs_failed,
        );
        counter(
            "jobs_cancelled_total",
            "Jobs cancelled.",
            stats.jobs_cancelled,
        );
        counter(
            "jobs_coalesced_total",
            "Submissions attached to an identical in-flight job.",
            stats.jobs_coalesced,
        );
        counter(
            "jobs_rejected_total",
            "Submissions rejected by queue backpressure.",
            stats.jobs_rejected,
        );
        // Retry/recovery/journal-replay counters are first-class telemetry
        // counters (`nvpim_job_retries_total`, `nvpim_recovered_jobs_total`,
        // `nvpim_resumed_chunks_total`, `nvpim_journal_records_replayed_total`)
        // and render with the telemetry block appended below.
        counter(
            "service_trials_executed_total",
            "Monte Carlo trials executed across all campaigns.",
            stats.trials_executed,
        );
        counter(
            "report_cache_hits_total",
            "Submissions served byte-identically from the report store.",
            stats.report_cache_hits,
        );
        counter(
            "report_cache_misses_total",
            "Report store lookups that missed.",
            stats.report_cache_misses,
        );
        counter(
            "estimator_jobs_total",
            "Submissions requesting the stratified estimator.",
            stats.estimator_jobs,
        );
        counter(
            "accuracy_jobs_total",
            "Submissions running the inference-accuracy campaign kind.",
            stats.accuracy_jobs,
        );
        counter(
            "accuracy_trials_evaluated_total",
            "Accuracy-campaign trials that produced a prediction.",
            stats.accuracy_trials_evaluated,
        );
        counter(
            "accuracy_trials_correct_total",
            "Accuracy-campaign predictions matching the clean model.",
            stats.accuracy_trials_correct,
        );
        let _ = writeln!(out, "# HELP nvpim_queue_depth Jobs currently queued.");
        let _ = writeln!(out, "# TYPE nvpim_queue_depth gauge");
        let _ = writeln!(out, "nvpim_queue_depth {}", stats.queue_depth);
        let _ = writeln!(
            out,
            "# HELP nvpim_report_cache_entries Distinct reports in the content-addressed store."
        );
        let _ = writeln!(out, "# TYPE nvpim_report_cache_entries gauge");
        let _ = writeln!(
            out,
            "nvpim_report_cache_entries {}",
            stats.report_cache_entries
        );
        out.push_str(&self.inner.telemetry.render_prometheus());
        out
    }

    /// Runs one shard of a campaign synchronously on the calling thread:
    /// trials `start .. end` of the plan's flat trial list, resumed past
    /// the `resume` outcome prefix, invoking `observer` after every chunk
    /// (the streaming seam `run_shard` connections checkpoint through).
    ///
    /// Shards bypass the job queue — they are driven by a fleet
    /// coordinator that owns scheduling — but share the process-wide
    /// schedule cache, telemetry sink, backend override and trial
    /// accounting with queued jobs.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] while draining or shutting down,
    /// [`ServiceError::InvalidPlan`], [`ServiceError::BadShard`] for bad
    /// ranges/prefixes, and [`ServiceError::JobCancelled`] when the
    /// observer cancels.
    pub fn run_shard(
        &self,
        plan: &SweepPlan,
        start: u64,
        end: u64,
        chunk_trials: usize,
        resume: Vec<TrialOutcome>,
        observer: impl FnMut(ChunkCheckpoint<'_>) -> CampaignControl,
    ) -> Result<Vec<TrialOutcome>, ServiceError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) || inner.draining.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        plan.validate().map_err(ServiceError::InvalidPlan)?;
        let prepared = {
            let mut cache = lock_unpoisoned(&inner.schedule_cache);
            prepare_campaign_with_telemetry(plan, &mut cache, inner.telemetry.clone())
                .map_err(ServiceError::InvalidPlan)?
        };
        let resumed = resume.len() as u64;
        let run_started = std::time::Instant::now();
        let result = prepared.run_shard_resumable(
            inner.backend(),
            start,
            end,
            chunk_trials.max(1),
            resume,
            observer,
        );
        let run_nanos = run_started.elapsed().as_nanos() as u64;
        inner
            .counters
            .busy_nanos
            .fetch_add(run_nanos, Ordering::Relaxed);
        match result {
            Ok(outcomes) => {
                inner.counters.trials_executed.fetch_add(
                    (outcomes.len() as u64).saturating_sub(resumed),
                    Ordering::Relaxed,
                );
                inner
                    .counters
                    .shards_executed
                    .fetch_add(1, Ordering::Relaxed);
                Ok(outcomes)
            }
            Err(SweepError::Cancelled) => Err(ServiceError::JobCancelled),
            Err(SweepError::BadCheckpoint(detail)) => Err(ServiceError::BadShard(detail)),
            Err(err) => Err(ServiceError::JobFailed(err.to_string())),
        }
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Whether the service is draining (bounded graceful exit in
    /// progress): still answering reads, accepting no new work.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// The configured graceful-drain budget, if any.
    pub fn shutdown_grace(&self) -> Option<Duration> {
        self.inner.cfg.shutdown_grace_ms.map(Duration::from_millis)
    }

    /// Begins shutdown: rejects new submissions and closes the queue so
    /// workers exit after draining. Non-blocking.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.queue.close();
    }

    /// Begins a graceful drain: new submissions are rejected, queued jobs
    /// are abandoned to journal replay, and running jobs stop at their
    /// next chunk boundary *without* being journaled as cancelled — they
    /// stay in-flight in the journal, so a restart resumes them from
    /// their last checkpoint. Non-blocking; `ping` reports
    /// `draining: true` from here on, and the daemon keeps answering
    /// reads (status/result/ping) until the drain completes — a draining
    /// worker is unschedulable, not dead. `shutting_down` flips only when
    /// [`Self::drain_with_grace`] finishes.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.abandon();
    }

    /// Drains with a bounded budget: [`Self::begin_drain`], then waits up
    /// to `grace` for workers to checkpoint and exit. Returns `true` when
    /// every worker exited within the budget; `false` means at least one
    /// worker is wedged mid-chunk and is left detached (its last
    /// journaled checkpoint still makes restart-resume exact).
    pub fn drain_with_grace(&self, grace: Duration) -> bool {
        self.begin_drain();
        let deadline = std::time::Instant::now() + grace;
        let handles = std::mem::take(&mut *lock_unpoisoned(&self.inner.workers));
        let mut clean = true;
        for handle in handles {
            while !handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                clean = false;
            }
        }
        // Drain complete (or budget spent): now the daemon stops serving.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        clean
    }

    /// Begins the configured stop mode: a graceful drain when
    /// [`ServiceConfig::shutdown_grace_ms`] is set, the legacy
    /// run-everything shutdown otherwise. Non-blocking.
    pub fn begin_stop(&self) {
        if self.inner.cfg.shutdown_grace_ms.is_some() {
            self.begin_drain();
        } else {
            self.begin_shutdown();
        }
    }

    /// Completes the configured stop mode (blocking): drains within the
    /// grace budget when one is configured, otherwise runs every queued
    /// job to completion and joins the pool.
    pub fn finish_stop(&self) {
        match self.shutdown_grace() {
            Some(grace) => {
                if !self.drain_with_grace(grace) {
                    eprintln!(
                        "nvpim-serviced: drain grace elapsed with a worker still mid-chunk; \
                         exiting on the last journaled checkpoint"
                    );
                }
            }
            None => self.shutdown(),
        }
    }

    /// Shuts down and joins the worker pool. Queued jobs drain first.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handles = std::mem::take(&mut *lock_unpoisoned(&self.inner.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Evicts the oldest terminal job records once the map exceeds `max`,
/// never touching `keep` (the id the current submission just handed to its
/// client — evicting it would turn an accepted submission into an
/// immediate `unknown_job`). Job ids are monotonically increasing, so
/// "oldest" is "smallest id".
fn evict_terminal_jobs(jobs: &mut HashMap<JobId, Arc<JobCore>>, max: usize, keep: JobId) {
    if jobs.len() <= max {
        return;
    }
    let mut terminal: Vec<JobId> = jobs
        .iter()
        .filter(|(&id, core)| id != keep && core.state().is_terminal())
        .map(|(&id, _)| id)
        .collect();
    terminal.sort_unstable();
    for id in terminal {
        if jobs.len() <= max {
            break;
        }
        jobs.remove(&id);
    }
}

/// Deregisters `core` from the in-flight map — but only if it is still the
/// registered core for its digest. A cancelled-while-queued job's stale
/// entry may have been replaced by a newer resubmission of the same plan;
/// blindly removing by digest would orphan that newer job's registration.
fn remove_from_active(inner: &Inner, core: &Arc<JobCore>) {
    let mut active = lock_unpoisoned(&inner.active);
    if let Some(current) = active.get(&core.digest) {
        if Arc::ptr_eq(current, core) {
            active.remove(&core.digest);
        }
    }
}

/// Credits one finished campaign's trials to the per-scheme and
/// per-backend labeled telemetry series (visible in the `metrics`
/// exposition as `nvpim_trials_by_scheme{scheme="..."}` /
/// `nvpim_trials_by_backend{backend="..."}`).
fn credit_labeled_trials(inner: &Inner, plan: &SweepPlan, trials: u64) {
    // Every protection design point runs the same share of the cartesian
    // product: workloads × technologies × rates × seeds.
    let per_scheme = trials / plan.protections.len().max(1) as u64;
    for prot in &plan.protections {
        inner.telemetry.add_labeled(
            "trials_by_scheme",
            "scheme",
            &prot.scheme.to_string(),
            per_scheme,
        );
    }
    inner.telemetry.add_labeled(
        "trials_by_backend",
        "backend",
        &inner.cfg.backend.to_string(),
        trials,
    );
}

/// Applies a journal replay to a freshly constructed (not yet serving)
/// service: terminal jobs become queryable records, in-flight jobs
/// re-queue with their checkpointed outcome prefixes.
fn restore_replayed_jobs(inner: &Arc<Inner>, replay: journal::Replay) {
    let records = replay.records_replayed;
    inner
        .counters
        .journal_replayed
        .store(records, Ordering::Relaxed);
    inner
        .telemetry
        .add(TelemetryCounter::JournalRecordsReplayed, records);
    for job in replay.jobs {
        let id = job.id;
        let digest = job.digest.clone();
        let trials_done = job.outcomes.len() as u64;
        // A `done` record is only journaled after its report reached the
        // durable store, so a verified store hit restores the report; a
        // missing or corrupt store file demotes the job to an in-flight
        // resume (the recomputed report is byte-identical).
        let core = match &job.terminal {
            Some(ReplayedTerminal::Done) => match lock_unpoisoned(&inner.store).get(&digest) {
                Some(report) => JobCore::restored(
                    id,
                    digest.clone(),
                    job.trials_total,
                    JobState::Done,
                    Some(report),
                    job.trials_total,
                ),
                None => restore_in_flight(inner, &job),
            },
            Some(ReplayedTerminal::Failed(error)) => JobCore::restored(
                id,
                digest.clone(),
                job.trials_total,
                JobState::Failed(error.clone()),
                None,
                trials_done,
            ),
            Some(ReplayedTerminal::Cancelled) => JobCore::restored(
                id,
                digest.clone(),
                job.trials_total,
                JobState::Cancelled,
                None,
                trials_done,
            ),
            None => restore_in_flight(inner, &job),
        };
        let state = core.state().label().to_string();
        lock_unpoisoned(&inner.jobs).insert(id, core);
        inner.counters.recovered.fetch_add(1, Ordering::Relaxed);
        inner.telemetry.add(TelemetryCounter::RecoveredJobs, 1);
        inner.emit_event(
            id,
            &digest,
            "recovered",
            vec![
                ("state".to_string(), Value::Str(state)),
                ("trials_done".to_string(), Value::UInt(trials_done)),
            ],
        );
    }
}

/// Re-queues one replayed in-flight job, splicing its checkpointed
/// outcomes back in so only the un-checkpointed suffix recomputes.
fn restore_in_flight(inner: &Arc<Inner>, job: &journal::ReplayedJob) -> Arc<JobCore> {
    let plan = match SweepPlan::from_json_str(&job.plan_json) {
        Ok(plan) => plan,
        Err(err) => {
            let error = format!("recovered job's journaled plan failed to decode: {err}");
            inner.journal_append(&JournalRecord::Failed {
                job: job.id,
                error: error.clone(),
            });
            return JobCore::restored(
                job.id,
                job.digest.clone(),
                job.trials_total,
                JobState::Failed(error),
                None,
                0,
            );
        }
    };
    let core = JobCore::new(job.id, job.digest.clone(), job.trials_total);
    core.note_progress(job.outcomes.len() as u64);
    // Re-seed the job's accuracy progress from the checkpointed prefix so
    // streamed progress stays cumulative across the restart (the service's
    // executed-work counters deliberately skip resumed outcomes).
    let (correct, evaluated) = count_accuracy(&job.outcomes);
    if evaluated > 0 {
        core.note_accuracy(correct, evaluated);
    }
    let item = WorkItem {
        core: Arc::clone(&core),
        plan,
        resume: job.outcomes.clone(),
    };
    if inner
        .queue
        .try_push(item, job.priority.min(9) as u8)
        .is_err()
    {
        let error = "recovered job could not re-queue (queue full at startup)".to_string();
        inner.journal_append(&JournalRecord::Failed {
            job: job.id,
            error: error.clone(),
        });
        core.fail(error);
        return core;
    }
    inner
        .counters
        .resumed_chunks
        .fetch_add(job.chunks_accepted, Ordering::Relaxed);
    inner
        .telemetry
        .add(TelemetryCounter::ResumedChunks, job.chunks_accepted);
    lock_unpoisoned(&inner.active).insert(job.digest.clone(), Arc::clone(&core));
    core
}

/// `(correct, evaluated)` over the outcomes that produced a prediction
/// (accuracy-campaign trials; error-campaign outcomes carry none).
fn count_accuracy(outcomes: &[TrialOutcome]) -> (u64, u64) {
    outcomes
        .iter()
        .filter_map(|o| o.correct)
        .fold((0, 0), |(c, n), correct| (c + u64::from(correct), n + 1))
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads cover `panic!` and `expect`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(item) = inner.queue.pop() {
        let core = Arc::clone(&item.core);
        if !core.set_running() {
            // Cancelled while queued (already counted by `cancel`).
            remove_from_active(inner, &core);
            continue;
        }
        inner.telemetry.record_histogram(
            "queue_wait_ns",
            core.submitted_at.elapsed().as_nanos() as u64,
        );
        inner.emit_event(
            core.id,
            &core.digest,
            "running",
            vec![("trials_total".to_string(), Value::UInt(core.trials_total))],
        );
        inner.journal_append(&JournalRecord::Start { job: core.id });
        run_job(inner, item);
        remove_from_active(inner, &core);
    }
}

/// Runs one job to a terminal state, containing panics: each attempt runs
/// under `catch_unwind`, so a panicking trial (a buggy scheme plugin, say)
/// poisons only this job — the worker survives and either retries the job
/// from its last checkpoint (up to `max_job_retries`, with exponential
/// backoff) or fails it terminally with the panic payload captured.
fn run_job(inner: &Inner, item: WorkItem) {
    let WorkItem { core, plan, resume } = item;
    // The checkpoint outlives attempts: outcomes accumulated (and
    // journaled) by a panicking attempt are not recomputed by its retry.
    let checkpoint: Mutex<Vec<TrialOutcome>> = Mutex::new(resume);
    let mut attempt: u32 = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(inner, &core, &plan, &checkpoint)
        }));
        let payload = match outcome {
            Ok(()) => return,
            Err(payload) => payload,
        };
        let message = panic_message(payload.as_ref());
        if attempt < inner.cfg.max_job_retries && !core.cancel_requested() {
            attempt += 1;
            inner.counters.retried.fetch_add(1, Ordering::Relaxed);
            inner.telemetry.add(TelemetryCounter::JobRetries, 1);
            inner.emit_event(
                core.id,
                &core.digest,
                "retry",
                vec![
                    ("attempt".to_string(), Value::UInt(u64::from(attempt))),
                    ("error".to_string(), Value::Str(message)),
                ],
            );
            let backoff = inner
                .cfg
                .retry_backoff_ms
                .saturating_mul(1u64 << (attempt - 1).min(16));
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            continue;
        }
        let error = format!("campaign panicked: {message}");
        inner.counters.failed.fetch_add(1, Ordering::Relaxed);
        inner.journal_append(&JournalRecord::Failed {
            job: core.id,
            error: error.clone(),
        });
        inner.emit_event(
            core.id,
            &core.digest,
            "failed",
            vec![("error".to_string(), Value::Str(error.clone()))],
        );
        core.fail(error);
        return;
    }
}

/// One execution attempt: prepare through the shared schedule cache, run
/// resumably from the shared checkpoint (journaling every chunk), and
/// drive the job to its terminal state. Panics propagate to [`run_job`].
fn run_attempt(
    inner: &Inner,
    core: &Arc<JobCore>,
    plan: &SweepPlan,
    checkpoint: &Mutex<Vec<TrialOutcome>>,
) {
    // Compile through the process-wide shared cache; the lock is held
    // only for preparation, never while trials run. The campaign runs
    // with the service-wide telemetry sink attached, so every phase
    // span and counter from the sweep engine lands in this service's
    // metrics.
    let prepared = {
        let mut cache = lock_unpoisoned(&inner.schedule_cache);
        prepare_campaign_with_telemetry(plan, &mut cache, inner.telemetry.clone())
    };
    let prepared = match prepared {
        Ok(prepared) => prepared,
        Err(err) => {
            // Counters precede the (waiter-waking) state transition so
            // a client that observed completion also observes them.
            inner.counters.failed.fetch_add(1, Ordering::Relaxed);
            inner.journal_append(&JournalRecord::Failed {
                job: core.id,
                error: err.to_string(),
            });
            inner.emit_event(
                core.id,
                &core.digest,
                "failed",
                vec![("error".to_string(), Value::Str(err.to_string()))],
            );
            core.fail(err.to_string());
            return;
        }
    };
    let resume = lock_unpoisoned(checkpoint).clone();
    let resumed_trials = resume.len() as u64;
    let run_started = std::time::Instant::now();
    let outcome =
        prepared.run_chunked_resumable(inner.backend(), inner.cfg.chunk_trials, resume, |chunk| {
            let trials_done = chunk.progress.trials_done;
            if !chunk.new_outcomes.is_empty() {
                // Journal before extending the in-memory checkpoint: a
                // crash between the two merely recomputes one chunk.
                inner.journal_append(&JournalRecord::Chunk {
                    job: core.id,
                    trials_done,
                    outcomes: chunk.new_outcomes.to_vec(),
                });
                lock_unpoisoned(checkpoint).extend_from_slice(chunk.new_outcomes);
            }
            core.note_progress(trials_done);
            let (correct, evaluated) = count_accuracy(chunk.new_outcomes);
            if evaluated > 0 {
                core.note_accuracy(correct, evaluated);
                inner
                    .counters
                    .accuracy_correct
                    .fetch_add(correct, Ordering::Relaxed);
                inner
                    .counters
                    .accuracy_evaluated
                    .fetch_add(evaluated, Ordering::Relaxed);
            }
            inner.emit_event(
                core.id,
                &core.digest,
                "chunk",
                vec![
                    ("trials_done".to_string(), Value::UInt(trials_done)),
                    ("trials_total".to_string(), Value::UInt(core.trials_total)),
                ],
            );
            if core.cancel_requested() || inner.draining.load(Ordering::SeqCst) {
                CampaignControl::Cancel
            } else {
                CampaignControl::Continue
            }
        });
    let run_nanos = run_started.elapsed().as_nanos() as u64;
    inner
        .counters
        .busy_nanos
        .fetch_add(run_nanos, Ordering::Relaxed);
    inner
        .telemetry
        .record_histogram("run_latency_ns", run_nanos);
    inner.counters.trials_executed.fetch_add(
        core.trials_done().saturating_sub(resumed_trials),
        Ordering::Relaxed,
    );
    match outcome {
        Ok(report) => {
            let json = Arc::new(
                inner
                    .telemetry
                    .time(Phase::ReportSerialization, || report.to_json()),
            );
            // The store write (durable tier included) precedes the `done`
            // journal record, so replay can trust a `done` record to have
            // its report on disk.
            lock_unpoisoned(&inner.store).insert(core.digest.clone(), Arc::clone(&json));
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            credit_labeled_trials(inner, plan, core.trials_total);
            inner.journal_append(&JournalRecord::Done { job: core.id });
            inner.emit_event(
                core.id,
                &core.digest,
                "done",
                vec![
                    ("trials_total".to_string(), Value::UInt(core.trials_total)),
                    ("run_nanos".to_string(), Value::UInt(run_nanos)),
                ],
            );
            core.complete(json);
        }
        Err(SweepError::Cancelled) => {
            if inner.draining.load(Ordering::SeqCst) && !core.cancel_requested() {
                // Stopped by a graceful drain, not a client: the job stays
                // *in-flight* in the journal (no terminal record), so a
                // restart over the same state dir resumes it from the
                // chunk checkpoint this attempt just journaled.
                inner.emit_event(
                    core.id,
                    &core.digest,
                    "drained",
                    vec![("trials_done".to_string(), Value::UInt(core.trials_done()))],
                );
                return;
            }
            inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            inner.journal_append(&JournalRecord::Cancelled { job: core.id });
            inner.emit_event(
                core.id,
                &core.digest,
                "cancelled",
                vec![("trials_done".to_string(), Value::UInt(core.trials_done()))],
            );
            core.mark_cancelled();
        }
        Err(err) => {
            inner.counters.failed.fetch_add(1, Ordering::Relaxed);
            inner.journal_append(&JournalRecord::Failed {
                job: core.id,
                error: err.to_string(),
            });
            inner.emit_event(
                core.id,
                &core.digest,
                "failed",
                vec![("error".to_string(), Value::Str(err.to_string()))],
            );
            core.fail(err.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan(seed: u64) -> SweepPlan {
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 2;
        plan.campaign_seed = seed;
        plan
    }

    #[test]
    fn estimator_submissions_are_counted_and_reported() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let exact = tiny_plan(7);
        let first = service.submit(exact, 0).unwrap();
        service.wait(first.job, None).unwrap();
        assert_eq!(service.stats().estimator_jobs, 0);

        let mut stratified = tiny_plan(7);
        stratified.estimator = EstimatorMode::Stratified;
        let second = service.submit(stratified, 0).unwrap();
        assert!(
            !second.cached,
            "a stratified plan must not hit the exact plan's cached report"
        );
        let report = service.wait(second.job, None).unwrap();
        assert!(report.contains("\"schema_version\": 2"));
        assert!(report.contains("\"estimator\""));
        assert_eq!(service.stats().estimator_jobs, 1);
        service.shutdown();
    }

    #[test]
    fn resubmission_hits_the_report_cache_with_identical_bytes() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let plan = tiny_plan(1);
        let plan_trials = plan.trial_count();
        let first = service.submit(plan.clone(), 0).unwrap();
        assert!(!first.cached);
        let report_a = service.wait(first.job, None).unwrap();

        let compiles_before = service.stats().schedule_cache_compiles;
        let second = service.submit(plan, 0).unwrap();
        assert!(second.cached, "warm resubmission must be a cache hit");
        let report_b = service.wait(second.job, None).unwrap();
        assert!(Arc::ptr_eq(&report_a, &report_b), "same stored bytes");

        let stats = service.stats();
        assert_eq!(stats.report_cache_hits, 1);
        assert_eq!(
            stats.schedule_cache_compiles, compiles_before,
            "cache hit must not recompile schedules"
        );
        // Throughput accounting: exactly one campaign executed (the cache
        // hit recomputed nothing), on the default sliced backend.
        assert_eq!(stats.backend, "sliced");
        assert_eq!(stats.trials_executed, plan_trials);
        assert!(
            stats.trials_per_sec.unwrap_or(0.0) > 0.0,
            "a completed campaign must yield a positive trial rate"
        );
        let status = service.status(first.job).unwrap();
        assert!(
            status.trials_per_sec.unwrap_or(0.0) > 0.0,
            "a completed job must report its trial rate"
        );
        assert_eq!(
            service.status(second.job).unwrap().trials_per_sec,
            None,
            "a cache-served job never ran, so it has no rate"
        );
        service.shutdown();
    }

    #[test]
    fn concurrent_identical_submissions_coalesce_and_agree() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let plan = tiny_plan(2);
        let outcomes: Vec<SubmitOutcome> = (0..4)
            .map(|_| service.submit(plan.clone(), 0).unwrap())
            .collect();
        let reports: Vec<Arc<String>> = outcomes
            .iter()
            .map(|o| service.wait(o.job, None).unwrap())
            .collect();
        for pair in reports.windows(2) {
            assert_eq!(pair[0].as_str(), pair[1].as_str());
        }
        let stats = service.stats();
        // First submission queued; with one campaign in flight the others
        // either coalesced onto it or (having completed) hit the store.
        assert_eq!(stats.jobs_submitted, 4);
        assert_eq!(
            stats.jobs_coalesced + stats.report_cache_hits,
            3,
            "identical concurrent plans must not run extra campaigns: {stats:?}"
        );
        service.shutdown();
    }

    #[test]
    fn queue_backpressure_rejects_structurally() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            chunk_trials: 4,
            ..Default::default()
        });
        // Distinct digests so nothing coalesces: vary the seed.
        let mut errors = 0;
        for seed in 0..16u64 {
            match service.submit(tiny_plan(1000 + seed), 0) {
                Ok(_) => {}
                Err(ServiceError::Overloaded { retry_after_ms }) => {
                    errors += 1;
                    assert!(
                        (10..=10_000).contains(&retry_after_ms),
                        "retry hint {retry_after_ms} ms outside the clamp band"
                    );
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(errors > 0, "a 1-deep queue must shed load");
        assert_eq!(service.stats().jobs_rejected, errors);
        service.shutdown();
    }

    #[test]
    fn run_shard_slices_match_a_full_campaign() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let plan = tiny_plan(60);
        let total = plan.trial_count();
        // Whole-campaign shard through the service == direct engine run.
        let mut streamed = 0u64;
        let outcomes = service
            .run_shard(&plan, 0, total, 4, Vec::new(), |cp| {
                streamed += cp.new_outcomes.len() as u64;
                CampaignControl::Continue
            })
            .unwrap();
        assert_eq!(outcomes.len() as u64, total);
        assert_eq!(streamed, total);
        let stats = service.stats();
        assert_eq!(stats.shards_executed, 1);
        assert_eq!(stats.trials_executed, total);
        // Bad ranges are structured errors, not panics.
        assert!(matches!(
            service.run_shard(&plan, 3, 2, 4, Vec::new(), |_| CampaignControl::Continue),
            Err(ServiceError::BadShard(_))
        ));
        service.shutdown();
        assert!(matches!(
            service.run_shard(&plan, 0, total, 4, Vec::new(), |_| {
                CampaignControl::Continue
            }),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn drain_abandons_queued_jobs_and_checkpoints_running_ones() {
        let dir = std::env::temp_dir().join(format!("nvpim-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            workers: 1,
            chunk_trials: 1, // fine-grained drain points
            state_dir: Some(dir.clone()),
            shutdown_grace_ms: Some(5_000),
            ..Default::default()
        };
        let service = ServiceHandle::start(cfg.clone());
        let mut running = tiny_plan(70);
        running.seeds_per_point = 64; // long enough to drain mid-run
        let active = service.submit(running.clone(), 9).unwrap();
        let queued_plan = tiny_plan(71);
        let queued = service.submit(queued_plan.clone(), 0).unwrap();
        while service.status(active.job).unwrap().state == "queued" {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(service.drain_with_grace(Duration::from_secs(5)));
        assert!(service.is_draining());
        // Neither job was journaled terminal: both are still in flight.
        assert_eq!(service.status(queued.job).unwrap().state, "queued");
        assert!(matches!(
            service.submit(tiny_plan(72), 0),
            Err(ServiceError::ShuttingDown)
        ));

        // A restart over the same state dir resumes both jobs — the
        // running one past its checkpointed chunks — and their reports
        // match clean runs byte-for-byte.
        let service2 = ServiceHandle::start(ServiceConfig {
            shutdown_grace_ms: None,
            ..cfg
        });
        let recovered_running = service2
            .wait(active.job, Some(Duration::from_secs(60)))
            .unwrap();
        let recovered_queued = service2
            .wait(queued.job, Some(Duration::from_secs(60)))
            .unwrap();
        assert_eq!(
            *recovered_running,
            nvpim_sweep::run_campaign(&running).unwrap().to_json()
        );
        assert_eq!(
            *recovered_queued,
            nvpim_sweep::run_campaign(&queued_plan).unwrap().to_json()
        );
        let stats = service2.stats();
        assert_eq!(stats.recovered_jobs, 2);
        assert!(
            stats.resumed_chunks > 0,
            "the drained running job must resume from its checkpoint: {stats:?}"
        );
        service2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn priorities_order_queued_work() {
        // One worker, and the queue drains strictly by priority once the
        // worker picks jobs up.
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            chunk_trials: 64,
            ..Default::default()
        });
        let low = service.submit(tiny_plan(10), 1).unwrap();
        let high = service.submit(tiny_plan(11), 9).unwrap();
        service.wait(low.job, None).unwrap();
        service.wait(high.job, None).unwrap();
        let stats = service.stats();
        assert_eq!(stats.jobs_completed, 2);
        service.shutdown();
    }

    #[test]
    fn mid_job_cancel_stops_at_a_chunk_boundary() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            chunk_trials: 1, // fine-grained cancellation points
            ..Default::default()
        });
        let mut plan = tiny_plan(20);
        plan.seeds_per_point = 64; // long enough to catch mid-run
        let out = service.submit(plan, 0).unwrap();
        // Wait for it to start, then cancel.
        while service.status(out.job).unwrap().state == "queued" {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(service.cancel(out.job).unwrap());
        let err = service
            .wait(out.job, Some(Duration::from_secs(30)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::JobCancelled));
        // The pool survives: a fresh job still runs to completion.
        let ok = service.submit(tiny_plan(21), 0).unwrap();
        service.wait(ok.job, None).unwrap();
        assert_eq!(service.stats().jobs_cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn resubmitting_a_cancelled_queued_plan_runs_a_fresh_campaign() {
        // One worker, kept busy by a long job so the next job sits queued.
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            chunk_trials: 4,
            ..Default::default()
        });
        let mut long = tiny_plan(50);
        long.seeds_per_point = 64;
        let blocker = service.submit(long, 9).unwrap();

        let victim = service.submit(tiny_plan(51), 0).unwrap();
        assert!(service.cancel(victim.job).unwrap());
        assert!(matches!(
            service.wait(victim.job, Some(Duration::from_secs(30))),
            Err(ServiceError::JobCancelled)
        ));

        // The identical plan resubmitted must NOT coalesce onto the
        // cancelled core — it gets a fresh campaign and completes.
        let retry = service.submit(tiny_plan(51), 0).unwrap();
        assert!(!retry.cached && !retry.coalesced);
        assert!(service.wait(retry.job, None).is_ok());
        service.wait(blocker.job, None).unwrap();
        service.shutdown();
    }

    #[test]
    fn terminal_job_records_are_evicted_beyond_the_cap() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 1,
            max_tracked_jobs: 3,
            ..Default::default()
        });
        // One real campaign, then repeated cached submissions of it: every
        // submission adds a (terminal-at-birth) job record.
        let plan = tiny_plan(40);
        let first = service.submit(plan.clone(), 0).unwrap();
        service.wait(first.job, None).unwrap();
        let mut last = 0;
        for _ in 0..8 {
            last = service.submit(plan.clone(), 0).unwrap().job;
        }
        // The oldest records are gone, the newest survives, and the report
        // itself is still served from the content-addressed store.
        assert!(matches!(
            service.result(first.job),
            Err(ServiceError::UnknownJob(_))
        ));
        assert!(service.result(last).is_ok());
        assert!(service.submit(plan, 0).unwrap().cached);
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_and_rejects_new_work() {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let out = service.submit(tiny_plan(30), 0).unwrap();
        service.shutdown();
        // The queued job completed before workers exited.
        assert!(service.result(out.job).is_ok());
        assert!(matches!(
            service.submit(tiny_plan(31), 0),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
