//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the minimal serialization model the workspace needs: a [`Serialize`]
//! trait producing an ordered JSON [`Value`] tree (field order = declaration
//! order, which keeps emitted JSON deterministic), and a [`Deserialize`]
//! marker trait so `#[derive(Deserialize)]` sites compile. The companion
//! `serde_json` stub renders [`Value`] as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An ordered JSON value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so a
/// struct always serializes its fields in declaration order and the output
/// bytes are reproducible run to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first match; objects preserve order).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` (unsigned, or a non-negative signed integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` (signed, or an unsigned integer that fits).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (floats and both integer flavors).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered key/value pairs, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]`.
///
/// Nothing in the workspace deserializes at run time; the derive exists so
/// the seed's `#[derive(Serialize, Deserialize)]` sites compile unchanged.
pub trait Deserialize {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// HashMap keys are sorted so that serialized output stays deterministic.
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for std::time::Duration {
    fn to_json(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}
