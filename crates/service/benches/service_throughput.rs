//! End-to-end service throughput: jobs/sec through `ServiceHandle` for
//! cold submissions (every plan unique — full campaign per job) vs
//! report-cache hits (identical plan resubmitted — zero recompute).
//!
//! Run with `cargo bench -p nvpim-service`.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpim_service::service::{ServiceConfig, ServiceHandle};
use nvpim_sweep::SweepPlan;

/// A small-but-real campaign (3 points × 2 seeds = 6 trials).
fn base_plan() -> SweepPlan {
    let mut plan = SweepPlan::quick();
    plan.seeds_per_point = 2;
    plan
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");

    group.bench_function("submit_wait_cold", |b| {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 2,
            queue_capacity: 1024,
            chunk_trials: 64,
            ..Default::default()
        });
        // Unique campaign seed per iteration → every submission is a cache
        // miss and runs a full campaign.
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut plan = base_plan();
            plan.campaign_seed = seed;
            let out = service.submit(plan, 0).expect("queue has room");
            criterion::black_box(service.wait(out.job, None).expect("job runs"));
        });
        service.shutdown();
    });

    group.bench_function("submit_wait_cache_hit", |b| {
        let service = ServiceHandle::start(ServiceConfig {
            workers: 2,
            queue_capacity: 1024,
            chunk_trials: 64,
            ..Default::default()
        });
        // Warm the content-addressed store once; every iteration after is
        // a pure digest-lookup + Arc clone.
        let plan = base_plan();
        let out = service.submit(plan.clone(), 0).expect("queue has room");
        service.wait(out.job, None).expect("warmup job runs");
        b.iter(|| {
            let out = service.submit(plan.clone(), 0).expect("queue has room");
            criterion::black_box(service.wait(out.job, None).expect("cache hit"));
        });
        service.shutdown();
    });

    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
