//! A bounded, blocking priority queue with backpressure.
//!
//! Submissions beyond the configured capacity are *rejected immediately*
//! (the caller gets its item back) instead of blocking the submitting
//! connection — the service turns that into a structured `queue_full`
//! error, which is the backpressure signal clients act on. Workers block
//! on [`BoundedPriorityQueue::pop`] until an item or queue closure arrives.
//!
//! Ordering: higher priority first; equal priorities are FIFO (by
//! submission sequence number), so a stream of same-priority jobs is
//! served in arrival order.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Internal heap entry: ordering key + payload.
struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; within a priority, earlier seq
        // (smaller) wins, hence the reversed comparison.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
    /// Abandoned queues refuse pushes *and* hand out nothing: `pop`
    /// returns `None` immediately even with items still queued. The
    /// graceful-drain mode — queued jobs stay journaled for replay
    /// instead of running to completion before exit.
    abandoned: bool,
}

/// A bounded blocking priority queue (see module docs).
pub struct BoundedPriorityQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedPriorityQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedPriorityQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedPriorityQueue<T> {
    /// Locks the queue state, recovering from poison. The queue's
    /// invariants hold whenever the lock is released, and a panic in one
    /// worker (contained by `catch_unwind`) must not wedge submissions or
    /// the rest of the pool behind a poisoned mutex.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
                abandoned: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock_inner().heap.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` at `priority` (higher runs first).
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full (backpressure) or
    /// closed, without blocking.
    pub fn try_push(&self, item: T, priority: u8) -> Result<(), T> {
        let mut inner = self.lock_inner();
        if inner.closed || inner.heap.len() >= self.capacity {
            return Err(item);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning the highest-priority
    /// one) or the queue is closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if inner.abandoned {
                return None;
            }
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: further pushes fail, and blocked/future `pop`s
    /// return `None` once the heap drains.
    pub fn close(&self) {
        self.lock_inner().closed = true;
        self.not_empty.notify_all();
    }

    /// Closes *and abandons* the queue: further pushes fail and every
    /// `pop` — blocked or future — returns `None` immediately, leaving
    /// queued items unserved. Drain mode: abandoned items are already in
    /// the write-ahead journal, so a restart replays them instead of this
    /// process running them to completion.
    pub fn abandon(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        inner.abandoned = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = BoundedPriorityQueue::new(8);
        q.try_push("low-1", 1).unwrap();
        q.try_push("high", 5).unwrap();
        q.try_push("low-2", 1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("low-1"));
        assert_eq!(q.pop(), Some("low-2"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedPriorityQueue::new(2);
        q.try_push(1, 0).unwrap();
        q.try_push(2, 0).unwrap();
        assert_eq!(q.try_push(3, 9), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3, 0).unwrap();
        q.close();
        assert_eq!(q.try_push(4, 0), Err(4));
    }

    #[test]
    fn abandon_unblocks_pops_without_serving_queued_items() {
        let q = BoundedPriorityQueue::new(4);
        q.try_push(1, 0).unwrap();
        q.try_push(2, 5).unwrap();
        q.abandon();
        // Items remain queued (journaled elsewhere) but are never served.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_push(3, 0), Err(3));

        // A blocked pop wakes up with None too.
        let q = Arc::new(BoundedPriorityQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.abandon();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = Arc::new(BoundedPriorityQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42, 0).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));

        let q3 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q3.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }
}
