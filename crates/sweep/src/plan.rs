//! Campaign plans: the cartesian product of workload × technology ×
//! protection × error rate, expanded into deterministic Monte Carlo trials.

use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::netlist::Netlist;
use nvpim_core::config::{DesignConfig, GateStyle, ProtectionScheme};
use nvpim_sim::technology::Technology;
use nvpim_workloads::Benchmark;
use serde::Serialize;

/// A protection design point: scheme plus gate style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ProtectionConfig {
    /// Protection scheme (unprotected baseline, ECiM or TRiM).
    pub scheme: ProtectionScheme,
    /// Multi- or single-output metadata generation.
    pub gate_style: GateStyle,
}

impl ProtectionConfig {
    /// The unprotected iso-area baseline.
    pub const UNPROTECTED: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Unprotected,
        gate_style: GateStyle::MultiOutput,
    };
    /// ECiM with multi-output gates (the paper's primary design point).
    pub const ECIM: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Ecim,
        gate_style: GateStyle::MultiOutput,
    };
    /// ECiM with single-output gates.
    pub const ECIM_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Ecim,
        gate_style: GateStyle::SingleOutput,
    };
    /// TRiM with multi-output gates.
    pub const TRIM: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Trim,
        gate_style: GateStyle::MultiOutput,
    };
    /// TRiM with single-output gates.
    pub const TRIM_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::Trim,
        gate_style: GateStyle::SingleOutput,
    };
    /// Detection-only even parity with multi-output gates (lands through
    /// the scheme registry's plugin path — no engine dispatch knows it).
    pub const PARITY_DETECT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::ParityDetect,
        gate_style: GateStyle::MultiOutput,
    };
    /// Detection-only even parity with single-output gates.
    pub const PARITY_DETECT_SINGLE_OUTPUT: ProtectionConfig = ProtectionConfig {
        scheme: ProtectionScheme::ParityDetect,
        gate_style: GateStyle::SingleOutput,
    };

    /// The three multi-output design points of the paper's evaluation.
    pub fn paper_trio() -> Vec<ProtectionConfig> {
        vec![Self::UNPROTECTED, Self::ECIM, Self::TRIM]
    }

    /// One multi-output design point per registered scheme, in registry
    /// order — automatically includes schemes added after this crate
    /// shipped.
    pub fn registry_sweep() -> Vec<ProtectionConfig> {
        ProtectionScheme::all()
            .map(|scheme| ProtectionConfig {
                scheme,
                gate_style: GateStyle::MultiOutput,
            })
            .collect()
    }

    /// The full design configuration for a technology — scheme-agnostic:
    /// any registered scheme resolves through
    /// [`DesignConfig::for_scheme`], never through a per-scheme match.
    pub fn design_config(&self, technology: Technology) -> DesignConfig {
        let base = DesignConfig::for_scheme(self.scheme, technology);
        match self.gate_style {
            GateStyle::MultiOutput => base,
            GateStyle::SingleOutput => base.with_single_output_gates(),
        }
    }

    /// Short label, e.g. `"ECiM/m-o"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.scheme, self.gate_style)
    }
}

/// The per-row program a trial executes functionally on the simulated array.
///
/// Kernels are synthesized on the fly with [`CircuitBuilder`]; `Benchmark`
/// workloads reuse the paper suite's row netlists (they must fit a single
/// row without spilling — the engine validates this when the campaign
/// compiles its schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SweepWorkload {
    /// Multiply-accumulate: `acc + x * y` with an `acc_bits`-bit accumulator
    /// and `mul_bits`-bit operands (the executor test workload family).
    Mac {
        /// Accumulator width in bits.
        acc_bits: usize,
        /// Multiplier operand width in bits.
        mul_bits: usize,
    },
    /// Ripple-carry addition of two `bits`-bit words.
    RippleAdd {
        /// Operand width in bits.
        bits: usize,
    },
    /// Unsigned multiplication of two `bits`-bit words.
    Multiplier {
        /// Operand width in bits.
        bits: usize,
    },
    /// A paper-suite benchmark's per-row netlist.
    Benchmark(Benchmark),
}

impl SweepWorkload {
    /// Stable workload name (doubles as the schedule-cache key component).
    pub fn name(&self) -> String {
        match self {
            SweepWorkload::Mac { acc_bits, mul_bits } => format!("mac{acc_bits}x{mul_bits}"),
            SweepWorkload::RippleAdd { bits } => format!("add{bits}"),
            SweepWorkload::Multiplier { bits } => format!("mul{bits}"),
            SweepWorkload::Benchmark(b) => b.name(),
        }
    }

    /// Synthesizes the workload's row netlist.
    pub fn netlist(&self) -> Netlist {
        match self {
            SweepWorkload::Mac { acc_bits, mul_bits } => {
                let mut b = CircuitBuilder::new();
                let acc = b.input_word(*acc_bits);
                let x = b.input_word(*mul_bits);
                let y = b.input_word(*mul_bits);
                let out = b.mac(&acc, &x, &y);
                b.mark_output_word(&out);
                b.finish()
            }
            SweepWorkload::RippleAdd { bits } => {
                let mut b = CircuitBuilder::new();
                let x = b.input_word(*bits);
                let y = b.input_word(*bits);
                let (sum, carry) = b.ripple_add(&x, &y, None);
                b.mark_output_word(&sum);
                b.mark_output(carry);
                b.finish()
            }
            SweepWorkload::Multiplier { bits } => {
                let mut b = CircuitBuilder::new();
                let x = b.input_word(*bits);
                let y = b.input_word(*bits);
                let p = b.mul_unsigned(&x, &y);
                b.mark_output_word(&p);
                b.finish()
            }
            SweepWorkload::Benchmark(bench) => bench.row_netlist(),
        }
    }
}

/// A full Monte Carlo campaign description.
///
/// The campaign expands into `workloads × technologies × protections ×
/// gate_error_rates` *points*, each executed for [`seeds_per_point`] trials
/// whose RNG seeds derive deterministically from [`campaign_seed`] — so a
/// campaign is reproducible byte-for-byte no matter how it is scheduled
/// across threads.
///
/// [`seeds_per_point`]: SweepPlan::seeds_per_point
/// [`campaign_seed`]: SweepPlan::campaign_seed
#[derive(Debug, Clone, Serialize)]
pub struct SweepPlan {
    /// Workloads to execute.
    pub workloads: Vec<SweepWorkload>,
    /// Technologies to simulate.
    pub technologies: Vec<Technology>,
    /// Protection design points.
    pub protections: Vec<ProtectionConfig>,
    /// Gate-output bit-flip probabilities to sweep.
    pub gate_error_rates: Vec<f64>,
    /// Monte Carlo trials per point.
    pub seeds_per_point: u64,
    /// Root seed every per-trial seed derives from.
    pub campaign_seed: u64,
}

impl SweepPlan {
    /// A small smoke campaign (single workload/technology, the paper trio,
    /// three error rates, a handful of seeds) for quick runs and tests.
    pub fn quick() -> Self {
        Self {
            workloads: vec![SweepWorkload::Mac {
                acc_bits: 8,
                mul_bits: 4,
            }],
            technologies: vec![Technology::SttMram],
            protections: ProtectionConfig::paper_trio(),
            gate_error_rates: vec![1e-4, 3e-4, 1e-3],
            seeds_per_point: 8,
            campaign_seed: 0x5eed_cafe,
        }
    }

    /// The paper-scale campaign behind the harness binaries' `--sweep`
    /// mode: two kernels, all three technologies, all five protection
    /// design points, a four-decade error-rate grid.
    pub fn paper_scale() -> Self {
        Self {
            workloads: vec![
                SweepWorkload::Mac {
                    acc_bits: 8,
                    mul_bits: 4,
                },
                SweepWorkload::RippleAdd { bits: 8 },
            ],
            technologies: Technology::ALL.to_vec(),
            protections: vec![
                ProtectionConfig::UNPROTECTED,
                ProtectionConfig::ECIM,
                ProtectionConfig::ECIM_SINGLE_OUTPUT,
                ProtectionConfig::TRIM,
                ProtectionConfig::TRIM_SINGLE_OUTPUT,
            ],
            gate_error_rates: vec![1e-5, 1e-4, 3e-4, 1e-3],
            seeds_per_point: 25,
            campaign_seed: 0x15ca_2024,
        }
    }

    /// Number of campaign points (workload × technology × protection × rate).
    pub fn point_count(&self) -> usize {
        self.workloads.len()
            * self.technologies.len()
            * self.protections.len()
            * self.gate_error_rates.len()
    }

    /// Total number of Monte Carlo trials the campaign will run.
    pub fn trial_count(&self) -> u64 {
        self.point_count() as u64 * self.seeds_per_point
    }

    /// Checks the plan is non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SweepError::EmptyPlan`] naming the empty axis.
    pub fn validate(&self) -> Result<(), crate::SweepError> {
        if self.workloads.is_empty() {
            return Err(crate::SweepError::EmptyPlan("workloads"));
        }
        if self.technologies.is_empty() {
            return Err(crate::SweepError::EmptyPlan("technologies"));
        }
        if self.protections.is_empty() {
            return Err(crate::SweepError::EmptyPlan("protections"));
        }
        if self.gate_error_rates.is_empty() {
            return Err(crate::SweepError::EmptyPlan("gate_error_rates"));
        }
        if self.seeds_per_point == 0 {
            return Err(crate::SweepError::EmptyPlan("seeds_per_point"));
        }
        for &rate in &self.gate_error_rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(crate::SweepError::InvalidErrorRate(rate));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_the_cartesian_product() {
        let plan = SweepPlan::quick();
        assert_eq!(plan.point_count(), 3 * 3);
        assert_eq!(plan.trial_count(), 9 * 8);
        plan.validate().unwrap();
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates.clear();
        assert!(plan.validate().is_err());
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates = vec![1.5];
        assert!(plan.validate().is_err());
        let mut plan = SweepPlan::quick();
        plan.seeds_per_point = 0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn workload_netlists_have_inputs_and_outputs() {
        for w in [
            SweepWorkload::Mac {
                acc_bits: 8,
                mul_bits: 4,
            },
            SweepWorkload::RippleAdd { bits: 8 },
            SweepWorkload::Multiplier { bits: 4 },
        ] {
            let n = w.netlist();
            assert!(!n.inputs.is_empty(), "{}", w.name());
            assert!(!n.outputs.is_empty(), "{}", w.name());
        }
    }

    #[test]
    fn protection_labels_and_configs_line_up() {
        let p = ProtectionConfig::ECIM_SINGLE_OUTPUT;
        assert_eq!(p.label(), "ECiM/s-o");
        let cfg = p.design_config(Technology::ReRam);
        assert_eq!(cfg.scheme, ProtectionScheme::Ecim);
        assert_eq!(cfg.gate_style, GateStyle::SingleOutput);
    }
}
