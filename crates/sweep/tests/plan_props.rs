//! Property tests over arbitrary generated [`SweepPlan`]s: trial counting
//! is exactly the cartesian product, and `validate()` rejects every
//! degenerate plan (an empty axis, zero seeds, an out-of-range rate).

use nvpim_sweep::{CampaignKind, EstimatorMode, ProtectionConfig, SweepPlan, SweepWorkload};
use proptest::prelude::*;

/// Builds a plan whose four axes have the given lengths (drawn from fixed
/// pools so the contents are always individually valid) and whose
/// rate/seed values come from the generated inputs.
fn plan_with(
    n_workloads: usize,
    n_technologies: usize,
    n_protections: usize,
    n_rates: usize,
    seeds: u64,
    rate: f64,
) -> SweepPlan {
    use nvpim_sim::technology::Technology;
    let workload_pool = [
        SweepWorkload::Mac {
            acc_bits: 8,
            mul_bits: 4,
        },
        SweepWorkload::RippleAdd { bits: 8 },
        SweepWorkload::Multiplier { bits: 4 },
    ];
    let protection_pool = [
        ProtectionConfig::UNPROTECTED,
        ProtectionConfig::ECIM,
        ProtectionConfig::ECIM_SINGLE_OUTPUT,
        ProtectionConfig::TRIM,
        ProtectionConfig::TRIM_SINGLE_OUTPUT,
    ];
    SweepPlan {
        workloads: workload_pool
            .iter()
            .cycle()
            .take(n_workloads)
            .copied()
            .collect(),
        technologies: Technology::ALL
            .iter()
            .cycle()
            .take(n_technologies)
            .copied()
            .collect(),
        protections: protection_pool
            .iter()
            .cycle()
            .take(n_protections)
            .copied()
            .collect(),
        gate_error_rates: (0..n_rates).map(|i| rate / (i + 1) as f64).collect(),
        seeds_per_point: seeds,
        campaign_seed: 0xfeed,
        estimator: EstimatorMode::Exact,
        kind: CampaignKind::Error,
        stuck_at_rate: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trial_count_is_points_times_seeds(
        n_workloads in 1usize..4,
        n_technologies in 1usize..4,
        n_protections in 1usize..6,
        n_rates in 1usize..5,
        seeds in 1u64..40,
        rate in 0.0f64..1.0,
    ) {
        let plan = plan_with(n_workloads, n_technologies, n_protections, n_rates, seeds, rate);
        prop_assert_eq!(
            plan.point_count(),
            n_workloads * n_technologies * n_protections * n_rates
        );
        prop_assert_eq!(plan.trial_count(), plan.point_count() as u64 * seeds);
        prop_assert_eq!(plan.trial_count(), plan.point_count() as u64 * plan.seeds_per_point);
        prop_assert!(plan.validate().is_ok(), "well-formed plans validate");
    }

    #[test]
    fn validate_rejects_empty_grids_and_zero_seeds(
        n_workloads in 0usize..3,
        n_technologies in 0usize..3,
        n_protections in 0usize..3,
        n_rates in 0usize..3,
        seeds in 0u64..20,
        rate in 0.0f64..1.0,
    ) {
        let plan = plan_with(n_workloads, n_technologies, n_protections, n_rates, seeds, rate);
        let degenerate = n_workloads == 0
            || n_technologies == 0
            || n_protections == 0
            || n_rates == 0
            || seeds == 0;
        prop_assert_eq!(
            plan.validate().is_err(),
            degenerate,
            "axes ({}, {}, {}, {}) x seeds {} must validate iff all nonzero",
            n_workloads, n_technologies, n_protections, n_rates, seeds
        );
        if degenerate {
            prop_assert_eq!(plan.trial_count(), plan.point_count() as u64 * seeds);
        }
    }

    #[test]
    fn validate_rejects_out_of_range_rates(offset in 0.0001f64..10.0) {
        let mut plan = SweepPlan::quick();
        plan.gate_error_rates = vec![1.0 + offset];
        prop_assert!(plan.validate().is_err());
        plan.gate_error_rates = vec![-offset];
        prop_assert!(plan.validate().is_err());
    }
}
