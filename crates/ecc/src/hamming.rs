//! Systematic Hamming codes with explicit generator / parity-check matrices.
//!
//! The paper's ECiM design maintains Hamming parity bits *inside* the PiM
//! array: every gate output that lands in data position `j` of the codeword
//! must toggle exactly the parity bits selected by the `j`-th row of `Aᵀ`
//! (Equation 1 of the paper). [`HammingCode::parity_update_mask`] exposes
//! that row directly, which is what the in-memory parity-update pipeline
//! consumes; [`HammingCode::syndrome`] / [`HammingCode::decode`] implement
//! the external Checker's decoding step.
//!
//! The default configuration used in the evaluation is `Hamming(255, 247)`
//! (`n = 255`, `k = 247`, 8 parity bits), matching a 256-column PiM array
//! row; the illustrative SEP example of Fig. 6 uses `Hamming(7, 4)`.
//!
//! # Examples
//!
//! ```
//! use nvpim_ecc::hamming::{DecodeOutcome, HammingCode};
//! use nvpim_ecc::gf2::BitVec;
//!
//! let code = HammingCode::new_standard(3); // Hamming(7, 4)
//! let data = BitVec::from_u64(0b1011, 4);
//! let mut cw = code.encode(&data);
//! cw.flip(2); // single-bit error in a data position
//! assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { position: 2 });
//! assert_eq!(code.extract_data(&cw), data);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::error::EccError;
use crate::gf2::{BitMatrix, BitVec};

/// Result of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The syndrome was zero: no error detected.
    Clean,
    /// A single-bit error was detected and corrected at `position`
    /// (codeword index; positions `< k` are data bits, the rest parity bits).
    Corrected {
        /// Codeword position that was flipped back.
        position: usize,
    },
    /// The syndrome was non-zero but did not match any single-bit error
    /// pattern. Only possible for shortened codes, where some syndromes are
    /// unreachable by single-bit flips; signals an uncorrectable error.
    Uncorrectable,
}

/// A systematic Hamming single-error-correcting code.
///
/// Codewords have layout `[data (k bits) | parity (n−k bits)]` with
/// `G = [I_k | Aᵀ]` and `H = [A | I_{n−k}]`.
#[derive(Clone)]
pub struct HammingCode {
    n: usize,
    k: usize,
    /// The (n−k) × k submatrix `A` from Equation 1.
    a: BitMatrix,
    /// Rows of `Aᵀ`: for data bit `j`, the set of parity bits it participates in.
    update_masks: Vec<BitVec>,
    /// Maps a non-zero syndrome (as integer) to the unique codeword position
    /// whose single-bit flip produces it.
    syndrome_to_position: HashMap<u64, usize>,
}

impl fmt::Debug for HammingCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HammingCode")
            .field("n", &self.n)
            .field("k", &self.k)
            .finish()
    }
}

impl HammingCode {
    /// Builds the standard `Hamming(2^r − 1, 2^r − 1 − r)` code.
    ///
    /// `r = 3` gives Hamming(7, 4); `r = 8` gives Hamming(255, 247), the
    /// configuration used throughout the paper's evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `r < 2` or `r > 16`.
    pub fn new_standard(r: usize) -> Self {
        assert!((2..=16).contains(&r), "r must be in 2..=16, got {r}");
        let n = (1usize << r) - 1;
        let k = n - r;
        Self::build(n, k, r)
    }

    /// Builds a (possibly shortened) systematic Hamming code protecting `k`
    /// data bits with the minimum number of parity bits `r` satisfying
    /// `2^r − 1 − r ≥ k`.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] if `k == 0`.
    pub fn with_data_bits(k: usize) -> Result<Self, EccError> {
        if k == 0 {
            return Err(EccError::InvalidParameters(
                "Hamming code requires at least one data bit".into(),
            ));
        }
        let mut r = 2usize;
        while (1usize << r) - 1 - r < k {
            r += 1;
        }
        Ok(Self::build(k + r, k, r))
    }

    /// Builds an `(n, k)` Hamming code.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidParameters`] if the parameters cannot form
    /// a single-error-correcting Hamming code (i.e. `2^(n−k) − 1 < n`).
    pub fn new(n: usize, k: usize) -> Result<Self, EccError> {
        if k == 0 || n <= k {
            return Err(EccError::InvalidParameters(format!(
                "invalid Hamming parameters n={n}, k={k}"
            )));
        }
        let r = n - k;
        if r > 32 || ((1usize << r) - 1) < n {
            return Err(EccError::InvalidParameters(format!(
                "{r} parity bits cannot protect a length-{n} codeword"
            )));
        }
        Ok(Self::build(n, k, r))
    }

    fn build(n: usize, k: usize, r: usize) -> Self {
        // Columns of H for data positions: the first k values with Hamming
        // weight >= 2, in increasing numeric order. Parity positions use the
        // identity columns (weight-1 values).
        let mut data_cols = Vec::with_capacity(k);
        let mut value = 3u64;
        while data_cols.len() < k {
            if value.count_ones() >= 2 {
                data_cols.push(value);
            }
            value += 1;
        }
        let mut a = BitMatrix::zeros(r, k);
        for (j, &col) in data_cols.iter().enumerate() {
            for i in 0..r {
                if (col >> i) & 1 == 1 {
                    a.set(i, j, true);
                }
            }
        }
        let update_masks: Vec<BitVec> = (0..k).map(|j| a.column(j)).collect();
        let mut syndrome_to_position = HashMap::with_capacity(n);
        for (j, &col) in data_cols.iter().enumerate() {
            syndrome_to_position.insert(col, j);
        }
        for i in 0..r {
            syndrome_to_position.insert(1u64 << i, k + i);
        }
        Self {
            n,
            k,
            a,
            update_masks,
            syndrome_to_position,
        }
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of data bits `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity (check) bits `n − k`.
    pub fn parity_bits(&self) -> usize {
        self.n - self.k
    }

    /// The `A` submatrix (`(n−k) × k`) from Equation 1 of the paper.
    pub fn a_matrix(&self) -> &BitMatrix {
        &self.a
    }

    /// The generator matrix `G = [I_k | Aᵀ]` (`k × n`).
    pub fn generator_matrix(&self) -> BitMatrix {
        BitMatrix::identity(self.k).hconcat(&self.a.transpose())
    }

    /// The parity-check matrix `H = [A | I_{n−k}]` (`(n−k) × n`).
    pub fn parity_check_matrix(&self) -> BitMatrix {
        self.a.hconcat(&BitMatrix::identity(self.n - self.k))
    }

    /// For data bit `j`, the parity bits that must be toggled when that data
    /// bit flips — i.e. the `j`-th row of `Aᵀ`. This is the quantity ECiM's
    /// in-memory parity-update pipeline consumes after every gate operation.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    pub fn parity_update_mask(&self, j: usize) -> &BitVec {
        assert!(j < self.k, "data bit {j} out of range {}", self.k);
        &self.update_masks[j]
    }

    /// Number of parity bits affected by data bit `j` (the number of XOR
    /// updates ECiM performs for a gate output written to position `j`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    pub fn parity_updates_for_bit(&self, j: usize) -> usize {
        self.parity_update_mask(j).count_ones()
    }

    /// [`Self::parity_update_mask`] packed into a single `u64` word (bit
    /// `i` = parity bit `i`). Valid because a Hamming code never has more
    /// than 32 parity bits; this is the form the lane-parallel (bit-sliced)
    /// syndrome kernel consumes.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    pub fn update_mask_word(&self, j: usize) -> u64 {
        self.parity_update_mask(j).words()[0]
    }

    /// The unique codeword position whose single-bit flip produces
    /// `syndrome`, or `None` when no single-bit error pattern matches (an
    /// uncorrectable syndrome — possible only for shortened codes). The
    /// zero syndrome also returns `None`: a clean word has no error
    /// position. This is the per-lane decode step of the sliced backend;
    /// [`Self::decode`] is the full-codeword variant.
    pub fn position_for_syndrome(&self, syndrome: u64) -> Option<usize> {
        self.syndrome_to_position.get(&syndrome).copied()
    }

    /// Encodes `data` into a systematic codeword `[data | parity]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.k, "data length must equal k = {}", self.k);
        let parity = self.a.mul_vec(data);
        data.concat(&parity)
    }

    /// Computes the parity bits for `data` without forming the codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn parity_of(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.k, "data length must equal k = {}", self.k);
        self.a.mul_vec(data)
    }

    /// Computes the syndrome `H · codeword` of a received word.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn syndrome(&self, codeword: &BitVec) -> BitVec {
        BitVec::from_u64(self.syndrome_value(codeword), self.n - self.k)
    }

    /// The syndrome as an integer (bit `i` = syndrome bit `i`), computed
    /// allocation-free: each syndrome bit is the parity of `A`-row AND
    /// codeword words (the `A` rows are `k` bits long with zeroed tails, so
    /// the AND masks out the parity region automatically) XOR the stored
    /// parity bit. This is the word-parallel path the ECiM Checker runs per
    /// logic level.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn syndrome_value(&self, codeword: &BitVec) -> u64 {
        assert_eq!(
            codeword.len(),
            self.n,
            "codeword length must equal n = {}",
            self.n
        );
        let cw = codeword.words();
        let mut syndrome = 0u64;
        for i in 0..self.n - self.k {
            let row = self.a.row(i).words();
            let ones: u32 = row.iter().zip(cw).map(|(a, c)| (a & c).count_ones()).sum();
            let bit = (ones & 1 == 1) ^ codeword.get(self.k + i);
            syndrome |= u64::from(bit) << i;
        }
        syndrome
    }

    /// Decodes and corrects `codeword` in place (single-error correction).
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn decode(&self, codeword: &mut BitVec) -> DecodeOutcome {
        let syndrome = self.syndrome_value(codeword);
        if syndrome == 0 {
            return DecodeOutcome::Clean;
        }
        match self.syndrome_to_position.get(&syndrome) {
            Some(&position) => {
                codeword.flip(position);
                DecodeOutcome::Corrected { position }
            }
            None => DecodeOutcome::Uncorrectable,
        }
    }

    /// Extracts the data bits from a systematic codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn extract_data(&self, codeword: &BitVec) -> BitVec {
        assert_eq!(
            codeword.len(),
            self.n,
            "codeword length must equal n = {}",
            self.n
        );
        codeword.slice(0..self.k)
    }

    /// Minimum Hamming distance of the code (3 for any Hamming code).
    pub fn min_distance(&self) -> usize {
        3
    }

    /// Number of errors the code can correct per codeword.
    pub fn correctable_errors(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_parameters() {
        let h74 = HammingCode::new_standard(3);
        assert_eq!((h74.n(), h74.k(), h74.parity_bits()), (7, 4, 3));
        let h255 = HammingCode::new_standard(8);
        assert_eq!((h255.n(), h255.k(), h255.parity_bits()), (255, 247, 8));
    }

    #[test]
    fn with_data_bits_picks_minimum_parity() {
        let code = HammingCode::with_data_bits(4).unwrap();
        assert_eq!((code.n(), code.k()), (7, 4));
        let code = HammingCode::with_data_bits(11).unwrap();
        assert_eq!((code.n(), code.k()), (15, 11));
        let code = HammingCode::with_data_bits(100).unwrap();
        assert_eq!(code.parity_bits(), 7);
        assert!(HammingCode::with_data_bits(0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(HammingCode::new(7, 0).is_err());
        assert!(HammingCode::new(4, 4).is_err());
        assert!(HammingCode::new(20, 17).is_err()); // 3 parity bits can't cover 20
        assert!(HammingCode::new(255, 247).is_ok());
    }

    #[test]
    fn gh_orthogonality() {
        for r in [3usize, 4, 5] {
            let code = HammingCode::new_standard(r);
            let g = code.generator_matrix();
            let h = code.parity_check_matrix();
            // H * Gᵀ must be the zero matrix.
            assert!(h.mul(&g.transpose()).is_zero(), "H·Gᵀ != 0 for r={r}");
        }
    }

    #[test]
    fn encode_zero_syndrome() {
        let code = HammingCode::new_standard(4);
        for value in [0u64, 1, 0b101_0101_0101, 0x7FF] {
            let data = BitVec::from_u64(value, code.k());
            let cw = code.encode(&data);
            assert!(code.syndrome(&cw).is_zero());
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn corrects_every_single_bit_error_h74() {
        let code = HammingCode::new_standard(3);
        let data = BitVec::from_u64(0b1011, 4);
        let clean = code.encode(&data);
        for pos in 0..code.n() {
            let mut corrupted = clean.clone();
            corrupted.flip(pos);
            let outcome = code.decode(&mut corrupted);
            assert_eq!(outcome, DecodeOutcome::Corrected { position: pos });
            assert_eq!(corrupted, clean);
        }
    }

    #[test]
    fn corrects_every_single_bit_error_h255() {
        let code = HammingCode::new_standard(8);
        let data: BitVec = (0..code.k()).map(|i| i % 3 == 0).collect();
        let clean = code.encode(&data);
        for pos in (0..code.n()).step_by(17).chain([0, 254]) {
            let mut corrupted = clean.clone();
            corrupted.flip(pos);
            assert_eq!(
                code.decode(&mut corrupted),
                DecodeOutcome::Corrected { position: pos }
            );
            assert_eq!(corrupted, clean);
        }
    }

    #[test]
    fn clean_codeword_reports_clean() {
        let code = HammingCode::new_standard(5);
        let data: BitVec = (0..code.k()).map(|i| i % 2 == 1).collect();
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
    }

    #[test]
    fn parity_update_mask_matches_encode_delta() {
        // Flipping data bit j changes the parity exactly by the update mask.
        let code = HammingCode::new_standard(4);
        let data = BitVec::zeros(code.k());
        let base_parity = code.parity_of(&data);
        for j in 0..code.k() {
            let mut flipped = data.clone();
            flipped.flip(j);
            let delta = code.parity_of(&flipped).xor(&base_parity);
            assert_eq!(&delta, code.parity_update_mask(j), "bit {j}");
            assert!(code.parity_updates_for_bit(j) >= 2);
            assert!(code.parity_updates_for_bit(j) <= code.parity_bits());
        }
    }

    #[test]
    fn shortened_code_round_trip() {
        let code = HammingCode::new(12, 8).unwrap();
        let data = BitVec::from_u64(0b1100_1010, 8);
        let clean = code.encode(&data);
        for pos in 0..code.n() {
            let mut corrupted = clean.clone();
            corrupted.flip(pos);
            assert_eq!(
                code.decode(&mut corrupted),
                DecodeOutcome::Corrected { position: pos }
            );
        }
    }

    #[test]
    fn syndrome_positions_match_decode_for_every_single_bit_error() {
        for code in [
            HammingCode::new_standard(3),
            HammingCode::with_data_bits(64).unwrap(),
        ] {
            let data: BitVec = (0..code.k()).map(|i| i % 5 == 2).collect();
            let clean = code.encode(&data);
            assert_eq!(code.position_for_syndrome(0), None, "zero syndrome");
            for pos in 0..code.n() {
                let mut corrupted = clean.clone();
                corrupted.flip(pos);
                let syndrome = code.syndrome_value(&corrupted);
                assert_eq!(
                    code.position_for_syndrome(syndrome),
                    Some(pos),
                    "n={} pos={pos}",
                    code.n()
                );
            }
        }
    }

    #[test]
    fn update_mask_words_match_the_bitvec_masks() {
        let code = HammingCode::new_standard(8);
        for j in [0usize, 1, 100, code.k() - 1] {
            let word = code.update_mask_word(j);
            let mask = code.parity_update_mask(j);
            for i in 0..code.parity_bits() {
                assert_eq!((word >> i) & 1 == 1, mask.get(i), "bit {j} parity {i}");
            }
        }
    }

    #[test]
    fn double_error_not_silently_accepted_as_clean() {
        let code = HammingCode::new_standard(3);
        let data = BitVec::from_u64(0b0110, 4);
        let clean = code.encode(&data);
        let mut corrupted = clean.clone();
        corrupted.flip(0);
        corrupted.flip(3);
        // A double error must never decode to "Clean" (distance-3 code).
        assert_ne!(code.decode(&mut corrupted), DecodeOutcome::Clean);
    }
}
