//! Regenerates Table II: the asymptotic SEP design space (time, energy and
//! Checker metadata of TRiM and ECiM per update/check granularity).

use nvpim_bench::{print_json, print_table, HarnessOptions};
use nvpim_ecc::design_space::table2_rows;

fn main() {
    let opts = HarnessOptions::from_args();
    let n: u64 = if opts.quick { 1 << 10 } else { 1 << 16 };
    println!("Table II — SEP design space for N = {n} protected gate outputs\n");
    let rows = table2_rows(n);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(point, cost)| {
            vec![
                point.scheme.to_string(),
                point.update.to_string(),
                point.check.to_string(),
                if cost.sep_guarantee { "yes" } else { "no" }.to_string(),
                format!("{:.0}", cost.time),
                if cost.time_maskable {
                    "maskable"
                } else {
                    "exposed"
                }
                .to_string(),
                format!("{:.0}", cost.energy),
                format!("{:.0}", cost.checker_metadata_bits),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "update",
            "check",
            "SEP",
            "time",
            "time masking",
            "energy",
            "checker metadata (bits)",
        ],
        &table,
    );
    if opts.json {
        print_json(&rows);
    }
}
