//! `nvpim-cli` — client for the `nvpim-serviced` campaign daemon.
//!
//! ```text
//! nvpim-cli submit  [--addr A] (--plan plan.json | --quick | --paper-scale)
//!                   [--priority N] [--wait]
//! nvpim-cli status  [--addr A] --job ID
//! nvpim-cli result  [--addr A] --job ID [--wait]
//! nvpim-cli cancel  [--addr A] --job ID
//! nvpim-cli stats   [--addr A] [--watch] [--interval-ms N] [--count N]
//! nvpim-cli metrics [--addr A]      # Prometheus-style text exposition
//! nvpim-cli shutdown [--addr A]
//! nvpim-cli run     (--plan plan.json | --quick | --paper-scale)
//!                   [--backend scalar|sliced]
//!                   [--estimator exact|stratified]
//!                   [--timings]                                    # no daemon
//! nvpim-cli schemes [--json]        # the protection-scheme registry
//! ```
//!
//! `submit --wait` streams progress to stderr and prints the final report
//! JSON (pretty, byte-identical to a direct `run_campaign` of the same
//! plan) on stdout. `run` executes the plan locally without a daemon —
//! used by CI to diff daemon output against direct execution; `run
//! --timings` additionally prints a per-phase timing/counter breakdown to
//! stderr (the report on stdout stays byte-identical). `stats --watch`
//! polls the daemon and prints counter deltas between refreshes;
//! `metrics` dumps the daemon's Prometheus-style text exposition. `schemes`
//! enumerates the compile-time scheme registry with per-scheme
//! capabilities — any scheme listed there is accepted in plan JSON with
//! zero CLI changes.

use nvpim::service::client::{request, Client};
use nvpim::service::flags::{has_flag, value_of};
use nvpim::sweep::{prepare_campaign_with_telemetry, run_campaign_with_backend, ScheduleCache};
use nvpim::telemetry::{Counter, Phase, Telemetry};
use nvpim::{EstimatorMode, SimBackend, SweepPlan};
use serde::Value;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("nvpim-cli: {msg}");
    std::process::exit(1)
}

/// Resolves the plan selection flags into a request `plan` value.
fn plan_value(args: &[String]) -> Value {
    if has_flag(args, "--quick") {
        return Value::Str("quick".into());
    }
    if has_flag(args, "--paper-scale") {
        return Value::Str("paper_scale".into());
    }
    let path = value_of(args, "--plan")
        .unwrap_or_else(|| die("expected --plan FILE, --quick or --paper-scale"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(format!("reading {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(format!("parsing {path}: {e}")))
}

/// Decodes the same plan selection locally (for `run`).
fn plan_local(args: &[String]) -> SweepPlan {
    if has_flag(args, "--quick") {
        return SweepPlan::quick();
    }
    if has_flag(args, "--paper-scale") {
        return SweepPlan::paper_scale();
    }
    let value = plan_value(args);
    SweepPlan::from_json_value(&value).unwrap_or_else(|e| die(e))
}

fn connect(args: &[String]) -> Client {
    let addr = value_of(args, "--addr").unwrap_or_else(|| DEFAULT_ADDR.to_string());
    Client::connect(&addr).unwrap_or_else(|e| die(format!("connecting to {addr}: {e}")))
}

fn job_arg(args: &[String]) -> u64 {
    value_of(args, "--job")
        .unwrap_or_else(|| die("expected --job ID"))
        .parse()
        .unwrap_or_else(|_| die("--job expects a number"))
}

/// Exits with status 1 when a response carries `"ok": false`.
fn check_ok(response: &Value) -> &Value {
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        let code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap_or("unknown");
        let message = response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("malformed error response");
        die(format!("server error [{code}]: {message}"));
    }
    response
}

fn print_pretty(value: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("serialize")
    );
}

/// Prints the embedded report of a `result`-shaped response.
fn print_report(response: &Value) {
    let report = response
        .get("report")
        .unwrap_or_else(|| die("result response carries no report"));
    print_pretty(report);
}

fn cmd_submit(args: &[String]) {
    let mut client = connect(args);
    let wait = has_flag(args, "--wait");
    let mut fields = vec![("plan".to_string(), plan_value(args))];
    if let Some(p) = value_of(args, "--priority") {
        let p: u64 = p
            .parse()
            .unwrap_or_else(|_| die("--priority expects a number"));
        fields.push(("priority".to_string(), Value::UInt(p)));
    }
    if wait {
        fields.push(("wait".to_string(), Value::Bool(true)));
    }
    client
        .send(&request("submit", fields))
        .unwrap_or_else(|e| die(e));
    // First line: acceptance (or error).
    let accepted = client
        .recv()
        .unwrap_or_else(|e| die(e))
        .unwrap_or_else(|| die("server closed the connection"));
    check_ok(&accepted);
    if !wait {
        print_pretty(&accepted);
        return;
    }
    let job = accepted.get("job").and_then(Value::as_u64).unwrap_or(0);
    eprintln!(
        "job {job} accepted (digest {}, cached: {})",
        accepted
            .get("digest")
            .and_then(Value::as_str)
            .unwrap_or("?"),
        accepted
            .get("cached")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    );
    // Then: progress events until the result line.
    loop {
        let line = client
            .recv()
            .unwrap_or_else(|e| die(e))
            .unwrap_or_else(|| die("server closed the connection mid-job"));
        check_ok(&line);
        match line.get("event").and_then(Value::as_str) {
            Some("progress") => {
                let percent = line.get("percent").and_then(Value::as_f64).unwrap_or(0.0);
                let done = line.get("trials_done").and_then(Value::as_u64).unwrap_or(0);
                let total = line
                    .get("trials_total")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                eprintln!("job {job}: {done}/{total} trials ({percent:.1}%)");
            }
            Some("result") => {
                print_report(&line);
                return;
            }
            other => die(format!("unexpected event {other:?}")),
        }
    }
}

fn cmd_result(args: &[String]) {
    let mut client = connect(args);
    let mut fields = vec![("job".to_string(), Value::UInt(job_arg(args)))];
    if has_flag(args, "--wait") {
        fields.push(("wait".to_string(), Value::Bool(true)));
    }
    let response = client
        .request(&request("result", fields))
        .unwrap_or_else(|e| die(e));
    check_ok(&response);
    print_report(&response);
}

fn simple_command(args: &[String], cmd: &str, fields: Vec<(String, Value)>) {
    let mut client = connect(args);
    let response = client
        .request(&request(cmd, fields))
        .unwrap_or_else(|e| die(e));
    check_ok(&response);
    print_pretty(&response);
}

fn cmd_run(args: &[String]) {
    let mut plan = plan_local(args);
    // `--estimator stratified` switches the campaign to the rare-event
    // estimator (conditioned trials, reweighted rates, Wilson CIs, schema
    // version 2); the default leaves the plan's own mode — Exact unless the
    // plan file says otherwise — and its byte-stable report format.
    if let Some(text) = value_of(args, "--estimator") {
        let estimator: EstimatorMode = text.parse().unwrap_or_else(|e| die(e));
        plan.estimator = estimator;
    }
    plan.validate().unwrap_or_else(|e| die(e));
    // Reports are byte-identical across backends; `--backend scalar` is
    // the reference path for cross-checking the sliced default.
    let backend: SimBackend = match value_of(args, "--backend") {
        None => SimBackend::default(),
        Some(text) => text.parse().unwrap_or_else(|e| die(e)),
    };
    if !has_flag(args, "--timings") {
        let report = run_campaign_with_backend(&plan, backend).unwrap_or_else(|e| die(e));
        println!("{}", report.to_json());
        return;
    }
    // `--timings`: run the same campaign with a telemetry sink attached and
    // print the per-phase breakdown to stderr. The report on stdout stays
    // byte-identical — telemetry only observes, it never touches the RNG
    // stream or trial outcomes.
    let telemetry = Telemetry::new();
    let mut cache = ScheduleCache::new();
    let report = prepare_campaign_with_telemetry(&plan, &mut cache, telemetry.clone())
        .unwrap_or_else(|e| die(e))
        .with_backend(backend)
        .run()
        .unwrap_or_else(|e| die(e));
    let json = telemetry.time(Phase::ReportSerialization, || report.to_json());
    println!("{json}");
    print_timings(&telemetry.snapshot());
}

/// Prints the `run --timings` per-phase breakdown and counter table to
/// stderr.
fn print_timings(snap: &nvpim::TelemetrySnapshot) {
    eprintln!();
    eprintln!(
        "{:<24} {:>10} {:>14} {:>12}",
        "phase", "spans", "total ms", "mean \u{b5}s"
    );
    for phase in Phase::ALL {
        let count = snap.phase_count(phase);
        let nanos = snap.phase_nanos(phase);
        let mean_us = if count == 0 {
            0.0
        } else {
            nanos as f64 / count as f64 / 1_000.0
        };
        eprintln!(
            "{:<24} {:>10} {:>14.3} {:>12.2}",
            phase.name(),
            count,
            nanos as f64 / 1e6,
            mean_us
        );
    }
    eprintln!();
    eprintln!("{:<24} {:>10}", "counter", "value");
    for counter in Counter::ALL {
        eprintln!("{:<24} {:>10}", counter.name(), snap.counter(counter));
    }
}

/// `nvpim-cli metrics`: dumps the daemon's Prometheus-style text
/// exposition (raw, not JSON-wrapped — ready for scraping or diffing).
fn cmd_metrics(args: &[String]) {
    let mut client = connect(args);
    let response = client
        .request(&request("metrics", vec![]))
        .unwrap_or_else(|e| die(e));
    check_ok(&response);
    let text = response
        .get("metrics")
        .and_then(Value::as_str)
        .unwrap_or_else(|| die("metrics response carries no text payload"));
    print!("{text}");
}

/// One `stats --watch` refresh: prints the counters that moved since the
/// previous snapshot as `name value (+delta)` lines.
fn print_stats_delta(stats: &Value, previous: Option<&Value>) {
    const WATCHED: &[&str] = &[
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "jobs_cancelled",
        "trials_executed",
        "clean_settled_trials",
        "estimator_redraws",
        "report_cache_hits",
        "queue_depth",
    ];
    let mut parts = Vec::new();
    for key in WATCHED {
        let now = stats.get(key).and_then(Value::as_u64).unwrap_or(0);
        let before = previous
            .and_then(|p| p.get(key))
            .and_then(Value::as_u64)
            .unwrap_or(now);
        if previous.is_none() || now != before {
            let delta = now.wrapping_sub(before);
            if previous.is_some() && delta > 0 {
                parts.push(format!("{key}={now} (+{delta})"));
            } else {
                parts.push(format!("{key}={now}"));
            }
        }
    }
    let rate = stats
        .get("trials_per_sec")
        .and_then(Value::as_f64)
        .map(|r| format!("rate={r:.0}/s"))
        .unwrap_or_else(|| "rate=n/a".to_string());
    if parts.is_empty() {
        println!("(idle) {rate}");
    } else {
        println!("{} {rate}", parts.join(" "));
    }
}

/// `nvpim-cli stats --watch`: polls the daemon every `--interval-ms`
/// (default 1000) and prints counter deltas, for `--count` refreshes
/// (default: until the connection drops).
fn cmd_stats_watch(args: &[String]) {
    let interval = value_of(args, "--interval-ms")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die("--interval-ms expects a number"))
        })
        .unwrap_or(1000u64);
    let count: u64 = value_of(args, "--count")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die("--count expects a number"))
        })
        .unwrap_or(u64::MAX);
    let mut client = connect(args);
    let mut previous: Option<Value> = None;
    let mut ticks = 0u64;
    while ticks < count {
        let response = client
            .request(&request("stats", vec![]))
            .unwrap_or_else(|e| die(e));
        check_ok(&response);
        let stats = response
            .get("stats")
            .cloned()
            .unwrap_or_else(|| die("stats response carries no payload"));
        print_stats_delta(&stats, previous.as_ref());
        previous = Some(stats);
        ticks += 1;
        if ticks < count {
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
}

/// `nvpim-cli schemes`: enumerates the protection-scheme registry with
/// per-scheme capabilities, evaluated against the paper's standard design
/// point (STT-MRAM, Hamming r = 8). Human-readable table by default,
/// machine-readable with `--json`.
fn cmd_schemes(args: &[String]) {
    let rows = nvpim::scheme_capabilities();
    if has_flag(args, "--json") {
        let entries: Vec<Value> = rows
            .iter()
            .map(|(scheme, caps)| {
                Value::Object(vec![
                    ("scheme".into(), Value::Str(scheme.wire_name().into())),
                    ("display".into(), Value::Str(scheme.name().into())),
                    ("sliceable".into(), Value::Bool(caps.sliceable)),
                    ("detect_only".into(), Value::Bool(caps.detect_only)),
                    ("parity_bits".into(), Value::UInt(caps.parity_bits as u64)),
                    (
                        "metadata_columns".into(),
                        Value::UInt(caps.metadata_columns as u64),
                    ),
                    (
                        "cells_per_value".into(),
                        Value::UInt(caps.cells_per_value as u64),
                    ),
                    ("analytic_clean".into(), Value::Bool(caps.analytic_clean)),
                ])
            })
            .collect();
        print_pretty(&Value::Array(entries));
        return;
    }
    println!(
        "{:<14} {:<12} {:>9} {:>11} {:>11} {:>16} {:>15} {:>14}",
        "scheme",
        "display",
        "sliceable",
        "detect-only",
        "parity bits",
        "metadata columns",
        "cells per value",
        "analytic-clean"
    );
    for (scheme, caps) in rows {
        println!(
            "{:<14} {:<12} {:>9} {:>11} {:>11} {:>16} {:>15} {:>14}",
            scheme.wire_name(),
            scheme.name(),
            caps.sliceable,
            caps.detect_only,
            caps.parity_bits,
            caps.metadata_columns,
            caps.cells_per_value,
            caps.analytic_clean
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("submit") => cmd_submit(&args),
        Some("status") => simple_command(
            &args,
            "status",
            vec![("job".to_string(), Value::UInt(job_arg(&args)))],
        ),
        Some("result") => cmd_result(&args),
        Some("cancel") => simple_command(
            &args,
            "cancel",
            vec![("job".to_string(), Value::UInt(job_arg(&args)))],
        ),
        Some("stats") => {
            if has_flag(&args, "--watch") {
                cmd_stats_watch(&args)
            } else {
                simple_command(&args, "stats", vec![])
            }
        }
        Some("metrics") => cmd_metrics(&args),
        Some("shutdown") => simple_command(&args, "shutdown", vec![]),
        Some("run") => cmd_run(&args),
        Some("schemes") => cmd_schemes(&args),
        _ => {
            eprintln!(
                "usage: nvpim-cli <submit|status|result|cancel|stats|metrics|shutdown|run|schemes> [flags]\n\
                 see `docs/protocol.md` for the full protocol, `docs/observability.md` for metrics"
            );
            std::process::exit(2);
        }
    }
}
