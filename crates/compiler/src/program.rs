//! Executing a mapped [`RowSchedule`] on a simulated PiM array row —
//! the "binary instruction translation" step of §II-B plus the behavioral
//! validation loop of §V.
//!
//! This closes the loop between the compiler and the array substrate: the
//! same column assignments the scheduler produced are driven as real in-array
//! gate operations, so functional results can be cross-checked against the
//! netlist's reference evaluation (and, with fault injection enabled, used
//! to measure error propagation).

use nvpim_sim::array::{ArrayError, GateOp, PimArray};
use nvpim_sim::gates::GateKind;

use crate::netlist::{LogicOp, Netlist};
use crate::schedule::RowSchedule;

/// Errors raised while executing a schedule on an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The schedule contains spills and cannot be executed on a single row.
    NotDirectlyExecutable,
    /// The array row is narrower than the schedule's layout.
    ArrayTooNarrow {
        /// Columns required.
        required: usize,
        /// Columns available.
        available: usize,
    },
    /// The input value count does not match the netlist.
    InputArityMismatch {
        /// Inputs expected.
        expected: usize,
        /// Inputs given.
        got: usize,
    },
    /// An array-level error occurred.
    Array(ArrayError),
    /// A primary output was not resident at the end of execution.
    MissingOutput {
        /// Index of the missing primary output.
        index: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NotDirectlyExecutable => {
                write!(f, "schedule spilled values and cannot run on a single row")
            }
            ExecError::ArrayTooNarrow {
                required,
                available,
            } => write!(
                f,
                "schedule needs {required} columns, array row has {available}"
            ),
            ExecError::InputArityMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            ExecError::Array(e) => write!(f, "array error: {e}"),
            ExecError::MissingOutput { index } => {
                write!(f, "primary output {index} is not resident in the row")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ArrayError> for ExecError {
    fn from(e: ArrayError) -> Self {
        ExecError::Array(e)
    }
}

fn gate_kind_for(op: &LogicOp, outputs: usize) -> GateKind {
    match op {
        LogicOp::Nor => GateKind::Nor {
            outputs: outputs as u8,
        },
        LogicOp::Thr => GateKind::THR,
        LogicOp::Copy => GateKind::Copy,
        LogicOp::Zero => GateKind::Preset { value: false },
        LogicOp::One => GateKind::Preset { value: true },
    }
}

/// Executes `schedule` (produced from `netlist`) in row `row` of `array`,
/// writing the primary `inputs` into their scheduled cells as they are first
/// needed, and returns the primary output values read back from the array.
///
/// # Errors
///
/// See [`ExecError`]. Note that with fault injection enabled on the array the
/// returned outputs may legitimately differ from the netlist reference — that
/// is the point of the experiment.
pub fn execute_schedule(
    schedule: &RowSchedule,
    netlist: &Netlist,
    array: &mut PimArray,
    row: usize,
    inputs: &[bool],
) -> Result<Vec<bool>, ExecError> {
    if !schedule.is_directly_executable() {
        return Err(ExecError::NotDirectlyExecutable);
    }
    if array.cols() < schedule.layout.total_columns {
        return Err(ExecError::ArrayTooNarrow {
            required: schedule.layout.total_columns,
            available: array.cols(),
        });
    }
    if inputs.len() != netlist.inputs.len() {
        return Err(ExecError::InputArityMismatch {
            expected: netlist.inputs.len(),
            got: inputs.len(),
        });
    }
    let input_value = |net: usize| -> Option<bool> {
        netlist
            .inputs
            .iter()
            .position(|&n| n == net)
            .map(|idx| inputs[idx])
    };

    // Track which cells have been initialized with primary-input data.
    let mut materialized: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();

    for sg in &schedule.gates {
        let gate = &netlist.gates[sg.index];
        // Write primary-input operands that are not yet resident.
        for (&net, &col) in gate.inputs.iter().zip(&sg.input_cols) {
            if let Some(value) = input_value(net) {
                if materialized.get(&net) != Some(&col) {
                    for copy in 0..schedule.layout.cells_per_value.max(1) {
                        // All copies of an input hold the same value; copies
                        // are adjacent in the scheduled column list only for
                        // outputs, so just write the referenced cell (copy 0).
                        if copy == 0 {
                            array.write_cell(row, col, value)?;
                        }
                    }
                    materialized.insert(net, col);
                }
            }
        }
        let kind = gate_kind_for(&sg.op, sg.output_cols.len());
        match kind {
            GateKind::Preset { value } => {
                for &col in &sg.output_cols {
                    array.write_cell(row, col, value)?;
                }
            }
            _ => {
                let op = GateOp::new(kind, row, sg.input_cols.clone(), sg.output_cols.clone());
                array.execute_gate(&op)?;
            }
        }
    }

    let mut outputs = Vec::with_capacity(schedule.output_cols.len());
    for (i, col) in schedule.output_cols.iter().enumerate() {
        match col {
            Some(c) => outputs.push(array.read_cell(row, *c)?),
            None => {
                // Outputs that are primary inputs passed through untouched.
                let net = netlist.outputs[i];
                match input_value(net) {
                    Some(v) => outputs.push(v),
                    None => return Err(ExecError::MissingOutput { index: i }),
                }
            }
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::layout::RowLayout;
    use crate::schedule::map_netlist;
    use nvpim_sim::fault::{ErrorRates, FaultInjector};
    use nvpim_sim::technology::Technology;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn adder_netlist(width: usize) -> Netlist {
        let mut b = CircuitBuilder::new();
        let a = b.input_word(width);
        let c = b.input_word(width);
        let (sum, carry) = b.ripple_add(&a, &c, None);
        b.mark_output_word(&sum);
        b.mark_output(carry);
        b.finish()
    }

    #[test]
    fn in_array_adder_matches_reference_for_all_technologies() {
        let netlist = adder_netlist(6);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        for tech in Technology::ALL {
            let mut array = PimArray::new(tech, 2, 256);
            for (a, b) in [(0u64, 0u64), (63, 1), (17, 45), (32, 31)] {
                let mut inputs = to_bits(a, 6);
                inputs.extend(to_bits(b, 6));
                let reference = netlist.evaluate(&inputs);
                let measured =
                    execute_schedule(&schedule, &netlist, &mut array, 0, &inputs).unwrap();
                assert_eq!(measured, reference, "{tech}: {a}+{b}");
                assert_eq!(from_bits(&measured), a + b);
            }
        }
    }

    #[test]
    fn in_array_multiplier_matches_reference_even_with_reclaims() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(4);
        let y = b.input_word(4);
        let p = b.mul_unsigned(&x, &y);
        b.mark_output_word(&p);
        let netlist = b.finish();
        // Narrow scratch to force reclaims, but wide enough to avoid spills.
        let layout = RowLayout {
            total_columns: 64,
            metadata_columns: 0,
            cells_per_value: 1,
        };
        let schedule = map_netlist(&netlist, layout).unwrap();
        assert!(
            schedule.reclaim_count() > 0,
            "test should exercise reclaims"
        );
        assert!(schedule.is_directly_executable());
        let mut array = PimArray::new(Technology::SttMram, 1, 64);
        for (a, c) in [(3u64, 5u64), (15, 15), (9, 11), (0, 7)] {
            let mut inputs = to_bits(a, 4);
            inputs.extend(to_bits(c, 4));
            let out = execute_schedule(&schedule, &netlist, &mut array, 0, &inputs).unwrap();
            assert_eq!(from_bits(&out), a * c, "{a}*{c}");
        }
    }

    #[test]
    fn spilled_schedule_is_rejected() {
        let netlist = adder_netlist(8);
        let layout = RowLayout {
            total_columns: 12,
            metadata_columns: 0,
            cells_per_value: 1,
        };
        let schedule = map_netlist(&netlist, layout).unwrap();
        let mut array = PimArray::new(Technology::SttMram, 1, 12);
        let err = execute_schedule(&schedule, &netlist, &mut array, 0, &[false; 16]);
        assert_eq!(err, Err(ExecError::NotDirectlyExecutable));
    }

    #[test]
    fn wrong_input_arity_rejected() {
        let netlist = adder_netlist(4);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(128)).unwrap();
        let mut array = PimArray::new(Technology::ReRam, 1, 128);
        let err = execute_schedule(&schedule, &netlist, &mut array, 0, &[true; 3]);
        assert_eq!(
            err,
            Err(ExecError::InputArityMismatch {
                expected: 8,
                got: 3
            })
        );
    }

    #[test]
    fn narrow_array_rejected() {
        let netlist = adder_netlist(4);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(128)).unwrap();
        let mut array = PimArray::new(Technology::ReRam, 1, 64);
        let err = execute_schedule(&schedule, &netlist, &mut array, 0, &[false; 8]);
        assert_eq!(
            err,
            Err(ExecError::ArrayTooNarrow {
                required: 128,
                available: 64
            })
        );
    }

    #[test]
    fn gate_faults_corrupt_in_array_results() {
        // With a high gate error rate, the in-array result must diverge from
        // the reference for at least some input combinations — demonstrating
        // why unprotected PiM computation needs ECiM / TRiM.
        let netlist = adder_netlist(8);
        let schedule = map_netlist(&netlist, RowLayout::unprotected(256)).unwrap();
        let mut array =
            PimArray::new(Technology::SttMram, 1, 256).with_fault_injector(FaultInjector::new(
                ErrorRates {
                    gate: 0.05,
                    ..ErrorRates::NONE
                },
                13,
            ));
        let mut mismatches = 0;
        for a in 0..16u64 {
            let mut inputs = to_bits(a * 7, 8);
            inputs.extend(to_bits(a * 11, 8));
            let reference = netlist.evaluate(&inputs);
            let measured = execute_schedule(&schedule, &netlist, &mut array, 0, &inputs).unwrap();
            if measured != reference {
                mismatches += 1;
            }
        }
        assert!(
            mismatches > 0,
            "5% gate error rate must corrupt some results"
        );
    }
}
