//! Functional execution of protected PiM computation (the behavioral
//! simulator of §V, extended with the protection protocols of §IV).
//!
//! [`ProtectedExecutor`] validates a compiled [`RowSchedule`] against the
//! design point and then dispatches the run to the configured scheme's
//! [`SchemeRuntime::run_scalar`](crate::scheme::SchemeRuntime::run_scalar)
//! — the per-scheme protocols (ECiM's in-memory parity folds, TRiM's
//! triple redundancy, ParityDetect's running parity, the unprotected
//! baseline) live in [`crate::schemes`], composed from this module's
//! public building blocks ([`ProtectedExecutor::materialize_inputs`],
//! [`ProtectedExecutor::execute_plain_gate`],
//! [`ProtectedExecutor::read_outputs`]) and the shared [`ExecScratch`]
//! buffers.
//!
//! Because the schemes' metadata operations are real in-array gate
//! operations on the same simulated array, injected faults can strike the
//! main computation, the parity pipeline, the redundant copies *or* idle
//! cells — and the executor's reports show whether the final outputs
//! survived, which is how the SEP guarantee is validated end to end.
//!
//! # Hot-path design
//!
//! The Monte Carlo sweep runs this executor millions of times, so the
//! steady state must not allocate: gate operations go through
//! [`PimArray::execute_gate_with`] with column slices (no per-gate `GateOp`
//! construction), and all per-run working memory lives in a caller-owned
//! [`ExecScratch`] that [`ProtectedExecutor::run_with_scratch`] reuses
//! across trials. [`ProtectedExecutor::run`] is the convenience wrapper
//! that allocates a fresh scratch per call.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_compiler::schedule::{RowSchedule, ScheduledGate};
use nvpim_ecc::gf2::BitVec;
use nvpim_ecc::hamming::HammingCode;
use nvpim_sim::array::{ArrayError, PimArray};
use nvpim_sim::gates::GateKind;
use serde::{Deserialize, Serialize};

use crate::config::DesignConfig;

/// Errors raised by protected execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectedExecError {
    /// The schedule was produced for a different layout than the config's.
    LayoutMismatch,
    /// The schedule contains spills and cannot run on a single row.
    NotDirectlyExecutable,
    /// The input value count does not match the netlist.
    InputArityMismatch {
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The array is too small for the configured layout.
    ArrayTooSmall,
    /// An array-level error occurred.
    Array(ArrayError),
}

impl std::fmt::Display for ProtectedExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectedExecError::LayoutMismatch => {
                write!(f, "schedule layout does not match the design configuration")
            }
            ProtectedExecError::NotDirectlyExecutable => {
                write!(f, "schedule spilled values and cannot run on a single row")
            }
            ProtectedExecError::InputArityMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            ProtectedExecError::ArrayTooSmall => write!(f, "array is smaller than the layout"),
            ProtectedExecError::Array(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for ProtectedExecError {}

impl From<ArrayError> for ProtectedExecError {
    fn from(e: ArrayError) -> Self {
        ProtectedExecError::Array(e)
    }
}

/// Outcome of one protected run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedRunReport {
    /// Primary output values read back from the array.
    pub outputs: Vec<bool>,
    /// Number of Checker invocations (one per logic level / codeword chunk).
    pub checks: u64,
    /// Checks in which an error was detected.
    pub errors_detected: u64,
    /// Data bits corrected and written back to the array.
    pub corrections_written_back: u64,
    /// Checks whose error pattern exceeded the correction capability.
    pub uncorrectable: u64,
    /// In-array gate operations spent on metadata (parity copies, XOR
    /// updates, redundant computation) rather than main computation.
    pub metadata_gate_ops: u64,
}

/// Reusable per-run working memory for [`ProtectedExecutor::run_with_scratch`].
///
/// Every collection is cleared (never shrunk) at the start of a run, so a
/// scratch held by a trial arena reaches a steady state where protected
/// execution performs no heap allocation at all. One scratch serves runs of
/// different netlists, schedules and protection schemes back to back.
/// The buffers are public so [`SchemeRuntime`](crate::scheme::SchemeRuntime)
/// implementations — including out-of-tree ones — can reuse them instead of
/// allocating their own per-run state; the parity/copy buffers are
/// general-purpose despite their historical per-scheme naming.
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Net id → primary-input position (dense, `u32::MAX` = not an input),
    /// rebuilt per run. Dense vectors instead of hash maps: the per-gate
    /// lookups in the trial hot path become plain indexed loads.
    pub input_positions: Vec<u32>,
    /// Primary inputs already written into the array this run (by net id).
    pub materialized: Vec<bool>,
    /// Nets consumed by at least one gate or marked as primary outputs.
    pub used_nets: Vec<bool>,
    /// Output-column assembly buffer for one gate operation.
    pub out_cols: Vec<usize>,
    /// Extra (metadata) output columns for one gate operation.
    pub extra_cols: Vec<usize>,
    /// Data column of each codeword position in the current check chunk
    /// (parity-style schemes).
    pub chunk_cols: Vec<usize>,
    /// Which of ping/pong holds each running parity bit.
    pub parity_in_pong: Vec<bool>,
    /// Column list for Checker transfers (data/parity or copy planes).
    pub cols_a: Vec<usize>,
    /// Second Checker-transfer column list.
    pub cols_b: Vec<usize>,
    /// Third Checker-transfer column list.
    pub cols_c: Vec<usize>,
    /// Bit buffer for Checker transfers.
    pub bits_a: BitVec,
    /// Second Checker-transfer bit buffer.
    pub bits_b: BitVec,
    /// Third Checker-transfer bit buffer.
    pub bits_c: BitVec,
    /// Majority-vote result buffer (redundancy-style schemes).
    pub bits_vote: BitVec,
    /// The three copy columns of every gate in the current level
    /// (redundancy-style schemes).
    pub level_outputs: Vec<[usize; 3]>,
}

impl ExecScratch {
    /// Creates an empty scratch (equivalent to `ExecScratch::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, netlist: &Netlist) {
        let nets = netlist.net_count;
        self.input_positions.clear();
        self.input_positions.resize(nets, u32::MAX);
        for (pos, &net) in netlist.inputs.iter().enumerate() {
            self.input_positions[net] = pos as u32;
        }
        self.materialized.clear();
        self.materialized.resize(nets, false);
        self.used_nets.clear();
        self.used_nets.resize(nets, false);
        for gate in &netlist.gates {
            for &input in &gate.inputs {
                self.used_nets[input] = true;
            }
        }
        for &output in &netlist.outputs {
            self.used_nets[output] = true;
        }
    }
}

/// Executes schedules under a [`DesignConfig`]'s protection scheme.
#[derive(Debug, Clone)]
pub struct ProtectedExecutor {
    config: DesignConfig,
    code: HammingCode,
}

impl ProtectedExecutor {
    /// Creates an executor for the given design point.
    pub fn new(config: DesignConfig) -> Self {
        let code = config.hamming_code();
        Self { config, code }
    }

    /// The design configuration.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// The Hamming code used for ECiM parity.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// Runs `schedule` (compiled from `netlist` with `config.row_layout()`)
    /// in row `row` of `array` on the given primary inputs, with a fresh
    /// scratch allocation. Hot loops should prefer
    /// [`Self::run_with_scratch`].
    ///
    /// # Errors
    ///
    /// See [`ProtectedExecError`].
    pub fn run(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let mut scratch = ExecScratch::default();
        self.run_with_scratch(netlist, schedule, array, row, inputs, &mut scratch)
    }

    /// [`Self::run`] with caller-owned working memory: the steady-state
    /// Monte Carlo path, allocation-free once `scratch` has warmed up.
    ///
    /// # Errors
    ///
    /// See [`ProtectedExecError`].
    pub fn run_with_scratch(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        if schedule.layout != self.config.row_layout() {
            return Err(ProtectedExecError::LayoutMismatch);
        }
        if !schedule.is_directly_executable() {
            return Err(ProtectedExecError::NotDirectlyExecutable);
        }
        if inputs.len() != netlist.inputs.len() {
            return Err(ProtectedExecError::InputArityMismatch {
                expected: netlist.inputs.len(),
                got: inputs.len(),
            });
        }
        if array.cols() < self.config.array_columns || row >= array.rows() {
            return Err(ProtectedExecError::ArrayTooSmall);
        }
        scratch.prepare(netlist);
        self.config
            .scheme
            .runtime()
            .run_scalar(self, netlist, schedule, array, row, inputs, scratch)
    }

    /// Convenience wrapper: compiles `netlist` for this design's layout and
    /// runs it on a fresh standard array, returning the report.
    ///
    /// # Errors
    ///
    /// Propagates mapping and execution errors as `ProtectedExecError`
    /// (mapping failures surface as [`ProtectedExecError::ArrayTooSmall`]).
    pub fn compile_and_run(
        &self,
        netlist: &Netlist,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<ProtectedRunReport, ProtectedExecError> {
        let schedule = nvpim_compiler::schedule::map_netlist(netlist, self.config.row_layout())
            .map_err(|_| ProtectedExecError::ArrayTooSmall)?;
        self.run(netlist, &schedule, array, row, inputs)
    }

    // ------------------------------------------------------------------
    // Scheme-runtime building blocks: the primitives every
    // `SchemeRuntime::run_scalar` implementation composes.
    // ------------------------------------------------------------------

    /// Writes any not-yet-materialized primary inputs consumed by `sg` into
    /// the array (into every copy this design keeps), tracking
    /// materialization in `scratch`.
    ///
    /// # Errors
    ///
    /// Propagates array-level write failures.
    pub fn materialize_inputs(
        &self,
        netlist: &Netlist,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
        scratch: &mut ExecScratch,
    ) -> Result<(), ProtectedExecError> {
        let gate_inputs = &netlist.gates[sg.index].inputs;
        for (i, &net) in gate_inputs.iter().enumerate() {
            let pos = scratch.input_positions[net];
            if pos != u32::MAX && !scratch.materialized[net] {
                scratch.materialized[net] = true;
                // Write the value into every copy this design keeps.
                for copy in 0..self.config.cells_per_value() {
                    let col = sg.input_cols_per_copy[copy.min(sg.input_cols_per_copy.len() - 1)][i];
                    array.write_cell(row, col, inputs[pos as usize])?;
                }
            }
        }
        Ok(())
    }

    /// Reads the schedule's primary outputs back (outputs that are also
    /// primary inputs are forwarded from `inputs`).
    ///
    /// # Errors
    ///
    /// Propagates array-level read failures.
    pub fn read_outputs(
        &self,
        netlist: &Netlist,
        schedule: &RowSchedule,
        array: &mut PimArray,
        row: usize,
        inputs: &[bool],
    ) -> Result<Vec<bool>, ProtectedExecError> {
        let mut outputs = Vec::with_capacity(schedule.output_cols.len());
        for (i, col) in schedule.output_cols.iter().enumerate() {
            match col {
                Some(c) => outputs.push(array.read_cell(row, *c)?),
                None => {
                    let net = netlist.outputs[i];
                    let pos = netlist
                        .inputs
                        .iter()
                        .position(|&n| n == net)
                        .expect("non-resident output must be a primary input");
                    outputs.push(inputs[pos]);
                }
            }
        }
        Ok(outputs)
    }

    /// Executes one scheduled gate into its primary output columns plus
    /// `extra` metadata columns, assembling the output list in `out_buf`
    /// (no per-gate allocation).
    ///
    /// # Errors
    ///
    /// Propagates array-level gate failures.
    pub fn execute_plain_gate(
        &self,
        sg: &ScheduledGate,
        array: &mut PimArray,
        row: usize,
        extra: &[usize],
        out_buf: &mut Vec<usize>,
    ) -> Result<(), ProtectedExecError> {
        let outputs: &[usize] = if extra.is_empty() {
            // Common case: the schedule's own columns, no assembly needed.
            &sg.output_cols
        } else {
            out_buf.clear();
            out_buf.extend_from_slice(&sg.output_cols);
            out_buf.extend_from_slice(extra);
            out_buf
        };
        match sg.op {
            LogicOp::Zero | LogicOp::One => {
                let value = sg.op == LogicOp::One;
                for &col in outputs {
                    array.write_cell(row, col, value)?;
                }
            }
            LogicOp::Nor => {
                let kind = GateKind::Nor {
                    outputs: outputs.len() as u8,
                };
                array.execute_gate_with(kind, row, &sg.input_cols, outputs)?;
            }
            LogicOp::Copy => {
                // A copy drives each destination with a separate single-output
                // operation (there is no multi-output copy primitive).
                for &col in outputs {
                    array.execute_gate_with(GateKind::Copy, row, &sg.input_cols, &[col])?;
                }
            }
            LogicOp::Thr => {
                for &col in outputs {
                    array.execute_gate_with(GateKind::THR, row, &sg.input_cols, &[col])?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GateStyle;
    use nvpim_compiler::builder::CircuitBuilder;
    use nvpim_compiler::schedule::map_netlist;
    use nvpim_sim::fault::{ErrorRates, FaultInjector};
    use nvpim_sim::technology::Technology;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn mac_netlist() -> Netlist {
        let mut b = CircuitBuilder::new();
        let acc = b.input_word(8);
        let x = b.input_word(4);
        let y = b.input_word(4);
        let out = b.mac(&acc, &x, &y);
        b.mark_output_word(&out);
        b.finish()
    }

    fn run_clean(config: DesignConfig) -> (ProtectedRunReport, u64) {
        let netlist = mac_netlist();
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(config.technology);
        let mut inputs = to_bits(100, 8);
        inputs.extend(to_bits(9, 4));
        inputs.extend(to_bits(13, 4));
        let report = executor
            .run(&netlist, &schedule, &mut array, 0, &inputs)
            .unwrap();
        let expected = 100 + 9 * 13;
        (report, expected)
    }

    #[test]
    fn unprotected_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::unprotected(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.checks, 0);
        assert_eq!(report.metadata_gate_ops, 0);
    }

    #[test]
    fn ecim_execution_is_functionally_correct_without_faults() {
        let (report, expected) = run_clean(DesignConfig::ecim(Technology::SttMram));
        assert_eq!(from_bits(&report.outputs), expected);
        assert!(report.checks > 0);
        assert_eq!(report.errors_detected, 0);
        assert_eq!(report.corrections_written_back, 0);
        assert!(report.metadata_gate_ops > 0);
    }

    #[test]
    fn ecim_single_output_style_also_correct() {
        let (report, expected) =
            run_clean(DesignConfig::ecim(Technology::ReRam).with_single_output_gates());
        assert_eq!(from_bits(&report.outputs), expected);
        assert_eq!(report.errors_detected, 0);
    }

    #[test]
    fn trim_execution_is_functionally_correct_without_faults() {
        for style in [GateStyle::MultiOutput, GateStyle::SingleOutput] {
            let mut config = DesignConfig::trim(Technology::SotSheMram);
            config.gate_style = style;
            let (report, expected) = run_clean(config);
            assert_eq!(from_bits(&report.outputs), expected, "{style}");
            assert!(report.checks > 0);
            assert_eq!(report.errors_detected, 0);
        }
    }

    #[test]
    fn shortened_hamming_design_is_functionally_correct() {
        // The Hamming(71, 64) design point used by the trial-throughput
        // benchmark must execute cleanly end to end.
        let config = DesignConfig::ecim(Technology::SttMram).with_hamming_data_bits(64);
        let executor = ProtectedExecutor::new(config.clone());
        assert_eq!(executor.code().n(), 71);
        assert_eq!(executor.code().k(), 64);
        let (report, expected) = run_clean(config);
        assert_eq!(from_bits(&report.outputs), expected);
        assert!(report.checks > 0);
        assert_eq!(report.errors_detected, 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        // One warmed-up scratch running back-to-back trials must produce
        // exactly the reports that fresh per-run scratches produce, for
        // every scheme — the arena-reset purity contract.
        let netlist = mac_netlist();
        let mut inputs = to_bits(33, 8);
        inputs.extend(to_bits(14, 4));
        inputs.extend(to_bits(6, 4));
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        for config in [
            DesignConfig::unprotected(Technology::SttMram),
            DesignConfig::ecim(Technology::SttMram),
            DesignConfig::trim(Technology::SttMram),
        ] {
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut scratch = ExecScratch::new();
            let mut reused_array = PimArray::standard(config.technology);
            for seed in 0..6u64 {
                reused_array.reset_for_trial(config.technology, rates, seed);
                let reused = executor
                    .run_with_scratch(
                        &netlist,
                        &schedule,
                        &mut reused_array,
                        0,
                        &inputs,
                        &mut scratch,
                    )
                    .unwrap();
                let mut fresh_array = PimArray::standard(config.technology)
                    .with_fault_injector(FaultInjector::new(rates, seed));
                let fresh = executor
                    .run(&netlist, &schedule, &mut fresh_array, 0, &inputs)
                    .unwrap();
                assert_eq!(reused, fresh, "{} seed {seed}", config.label());
                assert_eq!(
                    reused_array.fault_injector().log(),
                    fresh_array.fault_injector().log(),
                    "{} seed {seed}: fault logs must match",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn ecim_corrects_computation_errors_that_corrupt_the_unprotected_run() {
        // A modest gate error rate corrupts unprotected results but ECiM's
        // logic-level checks repair them. We pick a rate low enough that at
        // most one error lands per logic level (the SEP operating regime).
        let netlist = mac_netlist();
        let mut inputs = to_bits(77, 8);
        inputs.extend(to_bits(11, 4));
        inputs.extend(to_bits(7, 4));
        let expected = 77 + 11 * 7;
        // Low enough that (with these fixed seeds) at most one error lands in
        // any logic level — the SEP operating regime.
        let rates = ErrorRates {
            gate: 0.0003,
            ..ErrorRates::NONE
        };

        let mut ecim_failures = 0;
        let mut detections = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::ecim(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                ecim_failures += 1;
            }
        }
        assert!(detections > 0, "fault injection should trigger detections");
        assert_eq!(
            ecim_failures, 0,
            "ECiM must correct single errors per level"
        );
    }

    #[test]
    fn trim_corrects_computation_errors() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(5, 8);
        inputs.extend(to_bits(15, 4));
        inputs.extend(to_bits(15, 4));
        let expected = 5 + 15 * 15;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        let mut detections = 0;
        for seed in 100..120u64 {
            let config = DesignConfig::trim(Technology::SttMram).with_single_output_gates();
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            detections += report.errors_detected;
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(detections > 0);
        assert_eq!(failures, 0, "TRiM must correct single errors per level");
    }

    #[test]
    fn unprotected_execution_is_corrupted_by_the_same_error_regime() {
        let netlist = mac_netlist();
        let mut inputs = to_bits(200, 8);
        inputs.extend(to_bits(12, 4));
        inputs.extend(to_bits(3, 4));
        let expected = 200 + 12 * 3;
        let rates = ErrorRates {
            gate: 0.002,
            ..ErrorRates::NONE
        };
        let mut failures = 0;
        for seed in 0..20u64 {
            let config = DesignConfig::unprotected(Technology::SttMram);
            let executor = ProtectedExecutor::new(config.clone());
            let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
            let mut array = PimArray::standard(config.technology)
                .with_fault_injector(FaultInjector::new(rates, seed));
            let report = executor
                .run(&netlist, &schedule, &mut array, 0, &inputs)
                .unwrap();
            if from_bits(&report.outputs) != expected {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "the unprotected baseline should be corrupted at least once over 20 seeds"
        );
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::ecim(Technology::SttMram);
        let executor = ProtectedExecutor::new(config);
        // Schedule compiled for the *unprotected* layout.
        let schedule = map_netlist(
            &netlist,
            DesignConfig::unprotected(Technology::SttMram).row_layout(),
        )
        .unwrap();
        let mut array = PimArray::standard(Technology::SttMram);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[false; 16]);
        assert_eq!(err, Err(ProtectedExecError::LayoutMismatch));
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let netlist = mac_netlist();
        let config = DesignConfig::unprotected(Technology::ReRam);
        let executor = ProtectedExecutor::new(config.clone());
        let schedule = map_netlist(&netlist, config.row_layout()).unwrap();
        let mut array = PimArray::standard(Technology::ReRam);
        let err = executor.run(&netlist, &schedule, &mut array, 0, &[true; 2]);
        assert!(matches!(
            err,
            Err(ProtectedExecError::InputArityMismatch {
                expected: 16,
                got: 2
            })
        ));
    }
}
