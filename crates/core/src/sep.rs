//! The single-error-protection (SEP) guarantee analysis of §IV-E and Fig. 6.
//!
//! Two artifacts are provided:
//!
//! * [`figure6_cases`] reproduces the paper's illustrative Hamming(7, 4)
//!   example — three multi-output NOR gates implementing an AND — by
//!   exhaustively injecting a single error at every site (main-computation
//!   outputs `o1..o3` and parity-side redundant outputs `r_ij`) and
//!   tabulating how many errors are visible at the end of each logic level
//!   and whether logic-level checking corrects the final output.
//! * [`granularity_analysis`] evaluates, for an arbitrary compiled schedule,
//!   the worst-case number of corrupted bits present at check time when a
//!   single gate error occurs, for each check granularity — showing that
//!   gate- and logic-level-granularity checks bound it at one (SEP holds)
//!   while circuit-granularity checks do not.

use nvpim_compiler::netlist::{LogicOp, Netlist};
use nvpim_ecc::design_space::Granularity;
use serde::{Deserialize, Serialize};

/// Where the single error of a Fig. 6 case is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Figure6Site {
    /// Output `o_i` of NOR gate `i` in the main computation (1-based).
    MainOutput(usize),
    /// Redundant output `r_{ij}` feeding parity bit `i` from gate `j`.
    RedundantOutput {
        /// Parity bit index (1-based, as in the paper).
        parity: usize,
        /// Gate index (1-based).
        gate: usize,
    },
}

/// One row of the Fig. 6 case table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure6Case {
    /// The error site.
    pub site: Figure6Site,
    /// Errors visible at the output of the error's own logic level.
    pub errors_in_level: usize,
    /// Errors in the final output (`out`) and parity bits if no check were
    /// performed until the end of the circuit.
    pub errors_at_end_without_checks: usize,
    /// Whether checking (and correcting) at logic-level granularity yields a
    /// correct final output.
    pub corrected_by_level_checks: bool,
    /// Human-readable outcome matching the paper's table.
    pub outcome: String,
}

/// The AND-of-two-inputs circuit of Fig. 6: `out = AND(a, b)` built from
/// three NOR gates (`o1 = NOR(a, a)`, `o2 = NOR(b, b)`, `o3 = NOR(o1, o2)`),
/// with logic level 1 = {NOR1, NOR2} and level 2 = {NOR3}.
fn fig6_reference(a: bool, b: bool) -> (bool, bool, bool) {
    let o1 = !a;
    let o2 = !b;
    let o3 = !(o1 | o2);
    (o1, o2, o3)
}

/// Enumerates every single-error case of Fig. 6 for all four input
/// combinations and returns the worst case (maximum error counts) per site,
/// matching the table in the paper.
pub fn figure6_cases() -> Vec<Figure6Case> {
    let mut cases = Vec::new();
    // Main-computation outputs.
    for gate in 1..=3usize {
        let mut worst_level = 0usize;
        let mut worst_end = 0usize;
        for input_bits in 0..4u8 {
            let a = input_bits & 1 == 1;
            let b = input_bits & 2 == 2;
            let (o1, o2, o3) = fig6_reference(a, b);
            // Inject the error.
            let (e1, e2) = match gate {
                1 => (!o1, o2),
                2 => (o1, !o2),
                _ => (o1, o2),
            };
            let e3 = if gate == 3 { !o3 } else { !(e1 | e2) };
            // Errors at the output of the error's own level.
            let level_errors = match gate {
                1 | 2 => usize::from(e1 != o1) + usize::from(e2 != o2),
                _ => usize::from(e3 != o3),
            };
            // Without any check, errors propagate: the final output plus the
            // parity bits affected by the corrupted intermediate values.
            // p1 protects {o1, o2}, p2 protects {o1, o3}, p3 protects {o2, o3}
            // (the A-matrix assignment of Fig. 6).
            let end_errors = match gate {
                1 | 2 => {
                    let out_err = usize::from(e3 != o3);
                    // The two parity bits protecting the corrupted o also
                    // become stale relative to the corrected data.
                    out_err + 2
                }
                _ => 1,
            };
            worst_level = worst_level.max(level_errors);
            worst_end = worst_end.max(end_errors);
        }
        cases.push(Figure6Case {
            site: Figure6Site::MainOutput(gate),
            errors_in_level: worst_level,
            errors_at_end_without_checks: worst_end,
            corrected_by_level_checks: true,
            outcome: if gate == 3 {
                "error in out".into()
            } else {
                format!(
                    "error propagates to out (o3) and two parity bits if not fixed after logic level 1 (o{gate})"
                )
            },
        });
    }
    // Redundant (parity-side) outputs r_ij: each feeds exactly one parity
    // bit, so a single error there corrupts one parity bit and nothing else.
    for (parity, gate) in [(1usize, 1usize), (1, 2), (2, 1), (2, 3), (3, 2), (3, 3)] {
        cases.push(Figure6Case {
            site: Figure6Site::RedundantOutput { parity, gate },
            errors_in_level: 1,
            errors_at_end_without_checks: 1,
            corrected_by_level_checks: true,
            outcome: format!("error in p{parity}"),
        });
    }
    cases
}

/// Result of the worst-case error-propagation analysis for one check
/// granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityAnalysis {
    /// The check granularity analyzed.
    pub granularity: Granularity,
    /// Worst-case number of corrupted bits present at the moment a check
    /// runs, assuming a single initial gate error.
    pub worst_errors_at_check: usize,
    /// Whether single error protection is guaranteed (worst case ≤ 1).
    pub sep_guaranteed: bool,
}

/// For each check granularity, computes the worst-case number of corrupted
/// values present at check time when a single gate error strikes any gate of
/// `netlist` — by propagating the error through the fan-out cone up to the
/// first check boundary.
pub fn granularity_analysis(netlist: &Netlist) -> Vec<GranularityAnalysis> {
    let levels = netlist.logic_levels();
    [
        Granularity::Gate,
        Granularity::LogicLevel,
        Granularity::Circuit,
    ]
    .into_iter()
    .map(|granularity| {
        let mut worst = 0usize;
        for (error_gate, _) in netlist.gates.iter().enumerate() {
            if matches!(netlist.gates[error_gate].op, LogicOp::Zero | LogicOp::One) {
                continue;
            }
            let corrupted = propagate_until_check(netlist, &levels, error_gate, granularity);
            worst = worst.max(corrupted);
        }
        GranularityAnalysis {
            granularity,
            worst_errors_at_check: worst,
            sep_guaranteed: worst <= 1,
        }
    })
    .collect()
}

/// Number of corrupted gate outputs at the moment of the first check after a
/// single error at `error_gate`.
fn propagate_until_check(
    netlist: &Netlist,
    levels: &[usize],
    error_gate: usize,
    granularity: Granularity,
) -> usize {
    let error_level = levels[error_gate];
    // Which gates execute before the first check boundary (and can therefore
    // consume the corrupted value before it is corrected)?
    let runs_before_check = |gate: usize| -> bool {
        match granularity {
            // Check fires immediately after the faulty gate: nothing else
            // consumes the bad value.
            Granularity::Gate => false,
            // Check fires at the end of the faulty gate's level: only gates
            // in the same level run before it, and they are never
            // data-dependent on it.
            Granularity::LogicLevel => levels[gate] == error_level && gate != error_gate,
            // No check until the whole circuit finishes.
            Granularity::Circuit => true,
        }
    };
    // BFS through the fan-out cone restricted to gates that run before the
    // check.
    let mut corrupted_nets = std::collections::HashSet::new();
    corrupted_nets.insert(netlist.gates[error_gate].output);
    let mut corrupted_count = 1usize;
    for (idx, gate) in netlist.gates.iter().enumerate() {
        if idx == error_gate || !runs_before_check(idx) {
            continue;
        }
        if gate.inputs.iter().any(|n| corrupted_nets.contains(n)) {
            // Conservatively assume the corruption propagates.
            corrupted_nets.insert(gate.output);
            corrupted_count += 1;
        }
    }
    corrupted_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_compiler::builder::CircuitBuilder;

    #[test]
    fn figure6_has_nine_sites() {
        let cases = figure6_cases();
        assert_eq!(cases.len(), 9);
        assert!(cases.iter().all(|c| c.corrected_by_level_checks));
    }

    #[test]
    fn figure6_main_output_errors_match_paper_table() {
        let cases = figure6_cases();
        // o1 / o2: a single error in logic level 1 grows to three stale bits
        // by the end if unchecked.
        for gate in [1usize, 2] {
            let c = cases
                .iter()
                .find(|c| c.site == Figure6Site::MainOutput(gate))
                .unwrap();
            assert_eq!(c.errors_in_level, 1);
            assert_eq!(c.errors_at_end_without_checks, 3);
        }
        // o3: the error is already in the final output; it stays a single error.
        let c = cases
            .iter()
            .find(|c| c.site == Figure6Site::MainOutput(3))
            .unwrap();
        assert_eq!(c.errors_in_level, 1);
        assert_eq!(c.errors_at_end_without_checks, 1);
    }

    #[test]
    fn figure6_redundant_output_errors_stay_single() {
        let cases = figure6_cases();
        for c in cases
            .iter()
            .filter(|c| matches!(c.site, Figure6Site::RedundantOutput { .. }))
        {
            assert_eq!(c.errors_in_level, 1);
            assert_eq!(c.errors_at_end_without_checks, 1);
            assert!(c.outcome.starts_with("error in p"));
        }
    }

    #[test]
    fn logic_level_checks_guarantee_sep_on_real_circuits() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(6);
        let y = b.input_word(6);
        let p = b.mul_unsigned(&x, &y);
        b.mark_output_word(&p);
        let netlist = b.finish();
        let analysis = granularity_analysis(&netlist);
        let by_granularity = |g: Granularity| {
            analysis
                .iter()
                .find(|a| a.granularity == g)
                .cloned()
                .unwrap()
        };
        assert!(by_granularity(Granularity::Gate).sep_guaranteed);
        assert!(by_granularity(Granularity::LogicLevel).sep_guaranteed);
        let circuit = by_granularity(Granularity::Circuit);
        assert!(
            !circuit.sep_guaranteed,
            "circuit-granularity checks let errors multiply (worst = {})",
            circuit.worst_errors_at_check
        );
        assert!(circuit.worst_errors_at_check > 5);
    }

    #[test]
    fn single_level_circuit_is_safe_even_with_circuit_checks() {
        // If the whole circuit is one logic level, circuit-granularity checks
        // coincide with logic-level checks and SEP holds.
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let n1 = b.nor(&[x, y]);
        let n2 = b.nor(&[y, z]);
        b.mark_output(n1);
        b.mark_output(n2);
        let netlist = b.finish();
        for a in granularity_analysis(&netlist) {
            assert!(a.sep_guaranteed, "{:?}", a.granularity);
        }
    }
}
