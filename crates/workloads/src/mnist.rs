//! The MLP/MNIST benchmark family (`mnist1` … `mnist4`): a two-layer
//! perceptron with 64 hidden neurons classifying 28×28 images, with 1–4 bit
//! weight precision (§V).
//!
//! The MNIST dataset itself is not available offline; since the paper's
//! evaluation depends only on the *gate schedule* of the inference (shapes
//! and weight precision, never accuracy), a deterministic synthetic dataset
//! with the same tensor shapes substitutes for it (see DESIGN.md).
//!
//! Per the PiM mapping, the 784-term dot product of each hidden neuron is
//! split across [`ROW_SPLIT`] rows (so the whole hidden layer fills one
//! 256-row array); each row's program is a chunk of multiply–accumulates.

use nvpim_compiler::builder::CircuitBuilder;
use nvpim_compiler::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Image side length (MNIST is 28×28).
pub const IMAGE_SIDE: usize = 28;
/// Pixels per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Pixel precision in bits.
pub const PIXEL_BITS: usize = 8;
/// Hidden-layer width of the paper's MLP.
pub const HIDDEN_NEURONS: usize = 64;
/// Output classes.
pub const CLASSES: usize = 10;
/// Number of rows each hidden neuron's dot product is split across so that
/// the hidden layer occupies a full 256-row array (64 neurons × 4 rows).
pub const ROW_SPLIT: usize = 4;

/// A deterministic synthetic stand-in for MNIST: images are smooth pseudo
/// random 8-bit patterns, labels are derived from the generator state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticMnist {
    /// Flattened images, `IMAGE_PIXELS` bytes each.
    pub images: Vec<Vec<u8>>,
    /// Labels in `0..CLASSES`.
    pub labels: Vec<u8>,
}

impl SyntheticMnist {
    /// Generates `count` images deterministically from `seed`.
    pub fn generate(count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for _ in 0..count {
            // A blurred random blob: centre position + radius drive pixel
            // intensity, giving MNIST-like sparse images.
            let cx: f64 = rng.gen_range(8.0..20.0);
            let cy: f64 = rng.gen_range(8.0..20.0);
            let radius: f64 = rng.gen_range(3.0..9.0);
            let mut img = vec![0u8; IMAGE_PIXELS];
            for y in 0..IMAGE_SIDE {
                for x in 0..IMAGE_SIDE {
                    let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                    let v = (255.0 * (-((d / radius).powi(2))).exp()).round();
                    img[y * IMAGE_SIDE + x] = v as u8;
                }
            }
            images.push(img);
            labels.push(rng.gen_range(0..CLASSES as u8));
        }
        Self { images, labels }
    }
}

/// The two-layer quantized MLP of the paper: 784 → 64 → 10 with `weight_bits`
/// bit unsigned weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedMlp {
    /// Weight precision in bits (1–4 in the paper).
    pub weight_bits: usize,
    /// Hidden-layer weights, `HIDDEN_NEURONS × IMAGE_PIXELS`.
    pub hidden_weights: Vec<Vec<u8>>,
    /// Output-layer weights, `CLASSES × HIDDEN_NEURONS`.
    pub output_weights: Vec<Vec<u8>>,
}

impl QuantizedMlp {
    /// Generates deterministic weights for the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `weight_bits` is not in `1..=8`.
    pub fn generate(weight_bits: usize, seed: u64) -> Self {
        assert!((1..=8).contains(&weight_bits), "weight bits must be 1..=8");
        let mut rng = StdRng::seed_from_u64(seed);
        let max = (1u32 << weight_bits) as u8;
        let hidden_weights = (0..HIDDEN_NEURONS)
            .map(|_| (0..IMAGE_PIXELS).map(|_| rng.gen_range(0..max)).collect())
            .collect();
        let output_weights = (0..CLASSES)
            .map(|_| (0..HIDDEN_NEURONS).map(|_| rng.gen_range(0..max)).collect())
            .collect();
        Self {
            weight_bits,
            hidden_weights,
            output_weights,
        }
    }

    /// Reference (software) inference: returns the predicted class for an
    /// image, using a hard-threshold activation after the hidden layer
    /// (values above the layer mean activate), matching the netlist's
    /// fixed-point semantics.
    pub fn infer(&self, image: &[u8]) -> u8 {
        assert_eq!(image.len(), IMAGE_PIXELS);
        let hidden: Vec<u64> = self
            .hidden_weights
            .iter()
            .map(|w| {
                w.iter()
                    .zip(image)
                    .map(|(&wi, &xi)| wi as u64 * xi as u64)
                    .sum()
            })
            .collect();
        let mean: u64 = hidden.iter().sum::<u64>() / hidden.len() as u64;
        let activated: Vec<u64> = hidden.iter().map(|&h| u64::from(h > mean)).collect();
        let scores: Vec<u64> = self
            .output_weights
            .iter()
            .map(|w| {
                w.iter()
                    .zip(&activated)
                    .map(|(&wi, &ai)| wi as u64 * ai)
                    .sum()
            })
            .collect();
        scores
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u8)
            .unwrap_or(0)
    }
}

/// Accumulator width for a `terms`-term dot product of 8-bit pixels and
/// `weight_bits`-bit weights.
pub fn accumulator_bits(weight_bits: usize, terms: usize) -> usize {
    PIXEL_BITS + weight_bits + (usize::BITS - terms.next_power_of_two().leading_zeros()) as usize
}

/// Builds the per-row netlist of the `mnist<weight_bits>` benchmark: a chunk
/// of `IMAGE_PIXELS / ROW_SPLIT` multiply–accumulate operations of one hidden
/// neuron's dot product (pixels are 8-bit inputs, weights are
/// `weight_bits`-bit inputs).
pub fn row_netlist(weight_bits: usize) -> Netlist {
    row_netlist_with_terms(weight_bits, IMAGE_PIXELS / ROW_SPLIT)
}

/// Builds a per-row MLP netlist with an explicit number of MAC terms (used
/// by tests and reduced-size experiments).
pub fn row_netlist_with_terms(weight_bits: usize, terms: usize) -> Netlist {
    assert!((1..=8).contains(&weight_bits), "weight bits must be 1..=8");
    assert!(terms >= 1, "at least one MAC term");
    let acc_bits = accumulator_bits(weight_bits, terms);
    let mut b = CircuitBuilder::new();
    let mut acc = b.constant_word(0, acc_bits);
    for _ in 0..terms {
        let pixel = b.input_word(PIXEL_BITS);
        let weight = b.input_word(weight_bits);
        acc = b.mac(&acc, &pixel, &weight);
    }
    b.mark_output_word(&acc);
    b.finish()
}

/// Packs pixels and weights into the bit-level inputs of
/// [`row_netlist_with_terms`].
pub fn pack_row_inputs(pixels: &[u8], weights: &[u8], weight_bits: usize) -> Vec<bool> {
    assert_eq!(pixels.len(), weights.len());
    let mut bits = Vec::new();
    for (&p, &w) in pixels.iter().zip(weights) {
        for i in 0..PIXEL_BITS {
            bits.push((p >> i) & 1 == 1);
        }
        for i in 0..weight_bits {
            bits.push((w >> i) & 1 == 1);
        }
    }
    bits
}

// ---------------------------------------------------------------------------
// Accuracy-evaluation model
// ---------------------------------------------------------------------------

/// Average-pooling factor of the accuracy-evaluation model: 28×28 images are
/// pooled 4×4 so one hidden neuron's dot product fits a single row program.
pub const EVAL_POOL: usize = 4;
/// Pooled image side length (7).
pub const EVAL_SIDE: usize = IMAGE_SIDE / EVAL_POOL;
/// Pixels of a pooled image (49) — the MAC terms of one evaluation row.
pub const EVAL_PIXELS: usize = EVAL_SIDE * EVAL_SIDE;
/// Hidden-layer width of the accuracy-evaluation model. Each hidden neuron
/// runs on its own array row, so a trial exercises `EVAL_HIDDEN` distinct
/// rows (and therefore distinct stuck-at defect maps).
pub const EVAL_HIDDEN: usize = 8;

/// 4×4 average-pools a 28×28 image down to the 7×7 evaluation resolution.
pub fn downsample(image: &[u8]) -> Vec<u8> {
    assert_eq!(image.len(), IMAGE_PIXELS);
    let mut pooled = Vec::with_capacity(EVAL_PIXELS);
    for py in 0..EVAL_SIDE {
        for px in 0..EVAL_SIDE {
            let mut sum = 0u32;
            for dy in 0..EVAL_POOL {
                for dx in 0..EVAL_POOL {
                    sum += image[(py * EVAL_POOL + dy) * IMAGE_SIDE + (px * EVAL_POOL + dx)] as u32;
                }
            }
            pooled.push((sum / (EVAL_POOL * EVAL_POOL) as u32) as u8);
        }
    }
    pooled
}

/// The reduced two-layer MLP of inference-accuracy campaigns:
/// `EVAL_PIXELS → EVAL_HIDDEN → CLASSES` with `weight_bits`-bit unsigned
/// weights. Each hidden neuron's 49-term dot product is one row program
/// ([`row_netlist_with_terms`]); the activation, output layer and argmax run
/// in periphery software, exactly mirrored by [`Self::infer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MnistAccuracyModel {
    /// Weight precision in bits (1–4 in the paper).
    pub weight_bits: usize,
    /// Hidden-layer weights, `EVAL_HIDDEN × EVAL_PIXELS`.
    pub hidden_weights: Vec<Vec<u8>>,
    /// Output-layer weights, `CLASSES × EVAL_HIDDEN`.
    pub output_weights: Vec<Vec<u8>>,
}

impl MnistAccuracyModel {
    /// Generates deterministic weights for the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `weight_bits` is not in `1..=8`.
    pub fn generate(weight_bits: usize, seed: u64) -> Self {
        assert!((1..=8).contains(&weight_bits), "weight bits must be 1..=8");
        let mut rng = StdRng::seed_from_u64(seed);
        let max = (1u32 << weight_bits) as u8;
        let hidden_weights = (0..EVAL_HIDDEN)
            .map(|_| (0..EVAL_PIXELS).map(|_| rng.gen_range(0..max)).collect())
            .collect();
        let output_weights = (0..CLASSES)
            .map(|_| (0..EVAL_HIDDEN).map(|_| rng.gen_range(0..max)).collect())
            .collect();
        Self {
            weight_bits,
            hidden_weights,
            output_weights,
        }
    }

    /// The single row netlist every hidden neuron of the model executes: a
    /// 49-term MAC chain. One compiled schedule serves all `EVAL_HIDDEN`
    /// neuron runs of every trial.
    pub fn netlist(&self) -> Netlist {
        row_netlist_with_terms(self.weight_bits, EVAL_PIXELS)
    }

    /// Bit-level row inputs of hidden neuron `neuron` for a pooled image.
    pub fn neuron_inputs(&self, pooled: &[u8], neuron: usize) -> Vec<bool> {
        assert_eq!(pooled.len(), EVAL_PIXELS);
        pack_row_inputs(pooled, &self.hidden_weights[neuron], self.weight_bits)
    }

    /// The software dot product of hidden neuron `neuron` (the fault-free
    /// reference for one row program's accumulator output).
    pub fn neuron_sum(&self, pooled: &[u8], neuron: usize) -> u64 {
        self.hidden_weights[neuron]
            .iter()
            .zip(pooled)
            .map(|(&wi, &xi)| wi as u64 * xi as u64)
            .sum()
    }

    /// The periphery half of inference: mean-threshold activation over the
    /// hidden sums, output layer, argmax. Shared verbatim by the software
    /// reference ([`Self::infer`]) and the PiM path (which feeds the array's
    /// accumulator outputs in), so clean PiM inference agrees with the
    /// reference bit for bit.
    pub fn classify_from_sums(&self, hidden_sums: &[u64]) -> u8 {
        assert_eq!(hidden_sums.len(), EVAL_HIDDEN);
        let mean: u64 = hidden_sums.iter().sum::<u64>() / hidden_sums.len() as u64;
        let activated: Vec<u64> = hidden_sums.iter().map(|&h| u64::from(h > mean)).collect();
        let scores: Vec<u64> = self
            .output_weights
            .iter()
            .map(|w| {
                w.iter()
                    .zip(&activated)
                    .map(|(&wi, &ai)| wi as u64 * ai)
                    .sum()
            })
            .collect();
        scores
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u8)
            .unwrap_or(0)
    }

    /// Reference (software) inference on a pooled image.
    pub fn infer(&self, pooled: &[u8]) -> u8 {
        let sums: Vec<u64> = (0..EVAL_HIDDEN)
            .map(|n| self.neuron_sum(pooled, n))
            .collect();
        self.classify_from_sums(&sums)
    }
}

/// The clean-run baseline of an accuracy campaign, captured **once per
/// campaign** (never per trial): the fault-free model's prediction for every
/// evaluation image, plus its aggregate agreement with the synthetic labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MnistAccuracyBaseline {
    /// The clean model's top-1 prediction per pooled image — what each
    /// faulty trial's prediction is compared against.
    pub clean_predictions: Vec<u8>,
    /// Fraction of images whose clean prediction matches the synthetic
    /// label (the cached clean-run baseline accuracy constant).
    pub label_accuracy: f64,
}

impl MnistAccuracyBaseline {
    /// Runs the clean model over every pooled image.
    ///
    /// # Panics
    ///
    /// Panics when `pooled_images` and `labels` disagree in length or are
    /// empty.
    pub fn capture(model: &MnistAccuracyModel, pooled_images: &[Vec<u8>], labels: &[u8]) -> Self {
        assert_eq!(pooled_images.len(), labels.len());
        assert!(
            !pooled_images.is_empty(),
            "baseline needs at least one image"
        );
        let clean_predictions: Vec<u8> = pooled_images.iter().map(|img| model.infer(img)).collect();
        let matches = clean_predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        Self {
            label_accuracy: matches as f64 / labels.len() as f64,
            clean_predictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn synthetic_dataset_is_deterministic_and_well_formed() {
        let a = SyntheticMnist::generate(5, 42);
        let b = SyntheticMnist::generate(5, 42);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.len(), 5);
        assert!(a.images.iter().all(|img| img.len() == IMAGE_PIXELS));
        assert!(a.labels.iter().all(|&l| l < CLASSES as u8));
        // Images are not all-zero and not all-saturated.
        assert!(a.images[0].iter().any(|&p| p > 0));
        assert!(a.images[0].contains(&0));
        let c = SyntheticMnist::generate(5, 43);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn weights_respect_precision() {
        for bits in 1..=4usize {
            let mlp = QuantizedMlp::generate(bits, 7);
            let max = 1u8 << bits;
            assert!(mlp
                .hidden_weights
                .iter()
                .flatten()
                .chain(mlp.output_weights.iter().flatten())
                .all(|&w| w < max));
            assert_eq!(mlp.hidden_weights.len(), HIDDEN_NEURONS);
            assert_eq!(mlp.output_weights.len(), CLASSES);
        }
    }

    #[test]
    fn reference_inference_returns_a_class() {
        let mlp = QuantizedMlp::generate(2, 11);
        let data = SyntheticMnist::generate(3, 5);
        for img in &data.images {
            assert!((mlp.infer(img) as usize) < CLASSES);
        }
    }

    #[test]
    fn row_netlist_computes_the_dot_product_chunk() {
        let weight_bits = 3;
        let terms = 5;
        let netlist = row_netlist_with_terms(weight_bits, terms);
        let pixels = [200u8, 3, 77, 130, 255];
        let weights = [1u8, 7, 0, 5, 3];
        let inputs = pack_row_inputs(&pixels, &weights, weight_bits);
        let out = netlist.evaluate(&inputs);
        let expected: u64 = pixels
            .iter()
            .zip(&weights)
            .map(|(&p, &w)| p as u64 * w as u64)
            .sum();
        assert_eq!(from_bits(&out), expected);
    }

    #[test]
    fn higher_weight_precision_means_more_gates() {
        let g1 = row_netlist_with_terms(1, 8).gate_count();
        let g4 = row_netlist_with_terms(4, 8).gate_count();
        assert!(g4 > g1, "{g4} should exceed {g1}");
    }

    #[test]
    fn downsample_pools_and_preserves_range() {
        let data = SyntheticMnist::generate(2, 9);
        for img in &data.images {
            let pooled = downsample(img);
            assert_eq!(pooled.len(), EVAL_PIXELS);
            // Pooling averages, so the pooled peak cannot exceed the source
            // peak, and a nonzero image stays nonzero after pooling.
            let src_max = *img.iter().max().unwrap();
            let pooled_max = *pooled.iter().max().unwrap();
            assert!(pooled_max <= src_max);
            assert!(pooled.iter().any(|&p| p > 0));
        }
    }

    #[test]
    fn accuracy_model_pim_row_agrees_with_software_neuron_sums() {
        let model = MnistAccuracyModel::generate(2, 21);
        let data = SyntheticMnist::generate(3, 4);
        let netlist = model.netlist();
        for img in &data.images {
            let pooled = downsample(img);
            for neuron in 0..EVAL_HIDDEN {
                let inputs = model.neuron_inputs(&pooled, neuron);
                let out = netlist.evaluate(&inputs);
                assert_eq!(from_bits(&out), model.neuron_sum(&pooled, neuron));
            }
        }
    }

    #[test]
    fn accuracy_baseline_is_a_once_per_campaign_constant() {
        let model = MnistAccuracyModel::generate(1, 77);
        let data = SyntheticMnist::generate(16, 5);
        let pooled: Vec<Vec<u8>> = data.images.iter().map(|i| downsample(i)).collect();
        let a = MnistAccuracyBaseline::capture(&model, &pooled, &data.labels);
        let b = MnistAccuracyBaseline::capture(&model, &pooled, &data.labels);
        assert_eq!(a.clean_predictions, b.clean_predictions);
        assert_eq!(a.label_accuracy, b.label_accuracy);
        assert_eq!(a.clean_predictions.len(), 16);
        assert!((0.0..=1.0).contains(&a.label_accuracy));
        // Classifying from the software sums reproduces the baseline, so a
        // clean PiM trial is correct by construction.
        for (img, &pred) in pooled.iter().zip(&a.clean_predictions) {
            assert_eq!(model.infer(img), pred);
        }
    }

    #[test]
    fn full_row_netlist_has_the_paper_scale() {
        // 196 MACs per row: a substantial program (tens of thousands of gates).
        let netlist = row_netlist(1);
        assert_eq!(
            netlist.inputs.len(),
            (PIXEL_BITS + 1) * IMAGE_PIXELS / ROW_SPLIT
        );
        assert!(netlist.gate_count() > 10_000);
    }
}
