//! Row partitioning via logic-line switches (§II-A parallelism level 1 and
//! §IV-C).
//!
//! Each row of a PiM array can be divided into several partitions by
//! transistor switches in the logic lines. Gate operations may span multiple
//! partitions (by closing the intervening switches), but no more than one
//! gate operation can be in progress in any one partition of a row at a time.
//! ECiM exploits partitioning to run the main computation and the left/right
//! parity-block updates concurrently in the same row.

use serde::{Deserialize, Serialize};

use crate::array::{ArrayError, GateOp};

/// A partitioning of a row's columns into contiguous blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Exclusive end column of each partition, in increasing order. The last
    /// entry equals the number of columns.
    boundaries: Vec<usize>,
}

impl PartitionConfig {
    /// A single partition covering all `cols` columns (no switches).
    pub fn single(cols: usize) -> Self {
        Self {
            boundaries: vec![cols],
        }
    }

    /// Splits `cols` columns into `count` equally sized partitions
    /// (the last partition absorbs any remainder).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `count > cols`.
    pub fn uniform(cols: usize, count: usize) -> Self {
        assert!(count > 0, "at least one partition is required");
        assert!(count <= cols, "cannot have more partitions than columns");
        let base = cols / count;
        let mut boundaries = Vec::with_capacity(count);
        let mut acc = 0;
        for i in 0..count {
            acc += if i == count - 1 { cols - acc } else { base };
            boundaries.push(acc);
        }
        Self { boundaries }
    }

    /// Builds a partitioning from explicit partition widths.
    ///
    /// # Panics
    ///
    /// Panics if any width is zero.
    pub fn from_widths(widths: &[usize]) -> Self {
        assert!(!widths.is_empty(), "at least one partition is required");
        assert!(
            widths.iter().all(|&w| w > 0),
            "partition widths must be positive"
        );
        let mut boundaries = Vec::with_capacity(widths.len());
        let mut acc = 0;
        for &w in widths {
            acc += w;
            boundaries.push(acc);
        }
        Self { boundaries }
    }

    /// Number of partitions.
    pub fn count(&self) -> usize {
        self.boundaries.len()
    }

    /// Total number of columns covered.
    pub fn total_columns(&self) -> usize {
        *self.boundaries.last().expect("at least one partition")
    }

    /// The partition index containing column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is beyond the covered columns.
    pub fn partition_of(&self, col: usize) -> usize {
        assert!(
            col < self.total_columns(),
            "column {col} outside partition configuration"
        );
        self.boundaries.partition_point(|&end| end <= col)
    }

    /// The half-open column range of partition `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    pub fn range(&self, index: usize) -> std::ops::Range<usize> {
        assert!(index < self.count(), "partition {index} out of range");
        let start = if index == 0 {
            0
        } else {
            self.boundaries[index - 1]
        };
        start..self.boundaries[index]
    }

    /// The set of partitions a gate operation touches (inputs and outputs).
    pub fn partitions_touched(&self, op: &GateOp) -> Vec<usize> {
        let mut touched: Vec<usize> = op
            .inputs
            .iter()
            .chain(op.outputs.iter())
            .map(|&c| self.partition_of(c))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Validates that a batch of *simultaneous* gate operations respects the
    /// partition rule: within each row, no partition may be touched by more
    /// than one operation.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::PartitionConflict`] naming the first conflicting
    /// partition.
    pub fn validate_concurrent(&self, ops: &[GateOp]) -> Result<(), ArrayError> {
        use std::collections::HashSet;
        let mut used: HashSet<(usize, usize)> = HashSet::new();
        for op in ops {
            for p in self.partitions_touched(op) {
                if !used.insert((op.row, p)) {
                    return Err(ArrayError::PartitionConflict { partition: p });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateKind;

    #[test]
    fn uniform_partitioning() {
        let p = PartitionConfig::uniform(256, 4);
        assert_eq!(p.count(), 4);
        assert_eq!(p.total_columns(), 256);
        assert_eq!(p.range(0), 0..64);
        assert_eq!(p.range(3), 192..256);
        assert_eq!(p.partition_of(0), 0);
        assert_eq!(p.partition_of(63), 0);
        assert_eq!(p.partition_of(64), 1);
        assert_eq!(p.partition_of(255), 3);
    }

    #[test]
    fn uniform_with_remainder() {
        let p = PartitionConfig::uniform(10, 3);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(1), 3..6);
        assert_eq!(p.range(2), 6..10);
    }

    #[test]
    fn from_widths() {
        let p = PartitionConfig::from_widths(&[16, 224, 16]);
        assert_eq!(p.count(), 3);
        assert_eq!(p.total_columns(), 256);
        assert_eq!(p.partition_of(15), 0);
        assert_eq!(p.partition_of(16), 1);
        assert_eq!(p.partition_of(240), 2);
    }

    #[test]
    #[should_panic(expected = "outside partition configuration")]
    fn partition_of_out_of_range_panics() {
        PartitionConfig::single(8).partition_of(8);
    }

    #[test]
    fn gate_spanning_multiple_partitions_is_allowed_alone() {
        let p = PartitionConfig::uniform(8, 4);
        let op = GateOp::new(GateKind::NOR2, 0, vec![0, 7], vec![3]);
        assert_eq!(p.partitions_touched(&op), vec![0, 1, 3]);
        assert!(p.validate_concurrent(&[op]).is_ok());
    }

    #[test]
    fn conflicting_ops_in_same_row_rejected() {
        let p = PartitionConfig::uniform(8, 4);
        let a = GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]); // partitions 0,1
        let b = GateOp::new(GateKind::NOR2, 0, vec![3, 4], vec![5]); // partitions 1,2
        assert_eq!(
            p.validate_concurrent(&[a, b]),
            Err(ArrayError::PartitionConflict { partition: 1 })
        );
    }

    #[test]
    fn same_partitions_in_different_rows_do_not_conflict() {
        let p = PartitionConfig::uniform(8, 4);
        let a = GateOp::new(GateKind::NOR2, 0, vec![0, 1], vec![2]);
        let b = GateOp::new(GateKind::NOR2, 1, vec![0, 1], vec![2]);
        assert!(p.validate_concurrent(&[a, b]).is_ok());
    }

    #[test]
    fn disjoint_ops_in_same_row_coexist() {
        // This is exactly ECiM's pipeline: compute columns + left parity +
        // right parity active in one row simultaneously.
        let p = PartitionConfig::from_widths(&[8, 16, 8]);
        let left = GateOp::new(GateKind::THR, 0, vec![0, 1, 2, 3], vec![4]);
        let compute = GateOp::new(GateKind::NOR22, 0, vec![10, 11], vec![12, 5]);
        let right = GateOp::new(GateKind::NOR2, 0, vec![24, 25], vec![26]);
        // `compute` writes its second output into the left parity block, so it
        // conflicts with `left`; check both the conflicting and clean cases.
        assert!(p
            .validate_concurrent(&[left.clone(), right.clone()])
            .is_ok());
        assert!(p.validate_concurrent(&[left, compute]).is_err());
    }
}
